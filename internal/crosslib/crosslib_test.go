package crosslib

import (
	"testing"

	"repro/internal/blockdev"
	"repro/internal/fs"
	"repro/internal/pagecache"
	"repro/internal/simtime"
	"repro/internal/vfs"
)

// newKernel builds a kernel with the given cache capacity (pages) and
// limit-override support enabled.
func newKernel(capacity int64) *vfs.VFS {
	costs := simtime.DefaultCosts()
	dev := blockdev.New(blockdev.NVMeConfig())
	fsys := fs.New(fs.LayoutExtent, 4096, costs)
	cache := pagecache.New(pagecache.Config{BlockSize: 4096, CapacityPages: capacity, Costs: costs}, nil)
	cfg := vfs.DefaultConfig()
	cfg.AllowLimitOverride = true
	return vfs.New(cfg, fsys, dev, cache)
}

func TestApproachStringsAndOptions(t *testing.T) {
	for a := OSOnly; a <= CrossFetchAllOpt; a++ {
		if a.String() == "unknown" {
			t.Fatalf("approach %d has no name", a)
		}
		o := a.Options()
		if a.UsesLib() != o.Enabled {
			t.Fatalf("%v: UsesLib=%v but Options.Enabled=%v", a, a.UsesLib(), o.Enabled)
		}
	}
	if CrossPredictOpt.Options().RangeTreeSpan == 0 {
		t.Fatal("full system should use a range tree")
	}
	if CrossVisibility.Options().RangeTreeSpan != 0 {
		t.Fatal("visibility-only ablation should use a single-node tree")
	}
}

func TestPassthroughWhenDisabled(t *testing.T) {
	v := newKernel(100000)
	rt := New(v, Options{}) // disabled
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "f", 1<<20)
	f, err := rt.Open(tl, "f")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if _, err := f.ReadAt(tl, buf, 0); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().PrefetchCalls != 0 {
		t.Fatal("disabled runtime should not prefetch")
	}
}

func TestSequentialStreamPrefetches(t *testing.T) {
	v := newKernel(1_000_000)
	rt := NewForApproach(v, CrossPredictOpt)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 64<<20)
	f, err := rt.Open(tl, "big")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16384)
	for off := int64(0); off < 16<<20; off += 16384 {
		f.ReadAt(tl, buf, off)
	}
	st := rt.Stats()
	if st.PrefetchCalls == 0 {
		t.Fatal("sequential stream should trigger library prefetch")
	}
	if st.PrefetchedPages == 0 {
		t.Fatal("prefetch should have fetched pages")
	}
	// The library should prefetch beyond the kernel's static window.
	if fcached := f.Kernel().FileCache().CachedPages(); fcached <= (16<<20)/4096+32 {
		t.Fatalf("aggressive prefetch should outrun demand: cached=%d", fcached)
	}
}

func TestCacheAwarenessSavesSyscalls(t *testing.T) {
	v := newKernel(1_000_000)
	rt := NewForApproach(v, CrossPredictOpt)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 64<<20)
	f, _ := rt.Open(tl, "big")
	buf := make([]byte, 16384)
	// First pass populates; second pass should mostly skip prefetching.
	for pass := 0; pass < 2; pass++ {
		for off := int64(0); off < 8<<20; off += 16384 {
			f.ReadAt(tl, buf, off)
		}
	}
	st := rt.Stats()
	if st.SavedPrefetches == 0 {
		t.Fatal("warm re-read should elide prefetch syscalls")
	}
}

func TestRandomStreamNoPatternPrefetch(t *testing.T) {
	v := newKernel(1_000_000)
	// Predictor on, coverage off: random access must not trigger
	// pattern-window prefetching.
	rt := New(v, Options{Enabled: true, Visibility: true, Predict: true})
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 1<<30)
	f, _ := rt.Open(tl, "big")
	buf := make([]byte, 4096)
	offs := []int64{900 << 20, 5 << 20, 500 << 20, 100 << 20, 700 << 20, 10 << 20}
	for _, off := range offs {
		f.ReadAt(tl, buf, off)
	}
	if got := rt.Stats().PrefetchedPages; got > 64 {
		t.Fatalf("random stream prefetched %d pages", got)
	}
}

func TestCoveragePrefetchPopulatesUnderFreeMemory(t *testing.T) {
	v := newKernel(1_000_000) // 4GB budget: plenty free
	rt := NewForApproach(v, CrossPredictOpt)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 256<<20)
	f, _ := rt.Open(tl, "big")
	buf := make([]byte, 16384)
	offs := []int64{200 << 20, 5 << 20, 100 << 20, 30 << 20, 170 << 20, 60 << 20}
	for _, off := range offs {
		f.ReadAt(tl, buf, off)
	}
	// Coverage prefetching should have populated chunks around the random
	// accesses, far beyond the demanded pages.
	if got := rt.Stats().PrefetchedPages; got < 1024 {
		t.Fatalf("coverage prefetch fetched only %d pages", got)
	}
}

func TestFetchAllPrefetchesWholeFile(t *testing.T) {
	v := newKernel(1_000_000)
	rt := NewForApproach(v, CrossFetchAllOpt)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 32<<20)
	f, _ := rt.Open(tl, "big")
	// Open queues whole-file prefetch; device congestion control trims
	// the burst to roughly CongestionLimit × bandwidth (≈7MB), so a
	// healthy chunk — but not everything — is resident immediately.
	blocks := f.Kernel().Inode().Blocks()
	if got := f.Kernel().FileCache().CachedPages(); got < 1024 {
		t.Fatalf("fetchall cached only %d of %d blocks at open", got, blocks)
	}
	// Streaming the file lets the repair passes finish the job.
	buf := make([]byte, 1<<20)
	for pass := 0; pass < 8; pass++ {
		for off := int64(0); off < 32<<20; off += 1 << 20 {
			f.ReadAt(tl, buf, off)
		}
	}
	if got := f.Kernel().FileCache().CachedPages(); got != blocks {
		t.Fatalf("fetchall converged to %d of %d blocks", got, blocks)
	}
}

func TestOptimisticOpenPrefetch(t *testing.T) {
	v := newKernel(1_000_000)
	rt := NewForApproach(v, CrossPredictOpt)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 32<<20)
	f, _ := rt.Open(tl, "big")
	if rt.Stats().OpenPrefetches != 1 {
		t.Fatal("open should optimistically prefetch")
	}
	// 2MB = 512 pages.
	if got := f.Kernel().FileCache().CachedPages(); got != 512 {
		t.Fatalf("open prefetched %d pages, want 512", got)
	}
}

func TestLowMemoryHaltsPrefetch(t *testing.T) {
	v := newKernel(1000) // tiny: 4MB budget
	rt := NewForApproach(v, CrossPredictOpt)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 1<<30)
	f, _ := rt.Open(tl, "big")
	buf := make([]byte, 16384)
	for off := int64(0); off < 8<<20; off += 16384 {
		f.ReadAt(tl, buf, off)
	}
	// The budget stays respected: the kernel cache never exceeds capacity.
	if used := v.Cache().Used(); used > 1000 {
		t.Fatalf("cache used %d > capacity", used)
	}
}

func TestAggressiveEvictionOfInactiveFiles(t *testing.T) {
	v := newKernel(2000) // 8MB budget
	opt := CrossPredictOpt.Options()
	opt.InactiveAge = 1 * simtime.Microsecond
	opt.EvictCheckOps = 1
	rt := New(v, opt)
	tl := simtime.NewTimeline(0)

	v.FS().CreateSynthetic(tl, "cold", 4<<20)
	v.FS().CreateSynthetic(tl, "hot", 16<<20)
	cold, _ := rt.Open(tl, "cold")
	buf := make([]byte, 16384)
	for off := int64(0); off < 4<<20; off += 16384 {
		cold.ReadAt(tl, buf, off)
	}
	coldPages := cold.Kernel().FileCache().CachedPages()
	if coldPages == 0 {
		t.Fatal("cold file should be cached initially")
	}
	// Let the cold file go inactive, then stream the hot file under
	// pressure.
	tl.Advance(10 * simtime.Microsecond)
	hot, _ := rt.Open(tl, "hot")
	for off := int64(0); off < 16<<20; off += 16384 {
		hot.ReadAt(tl, buf, off)
	}
	if rt.Stats().EvictedPages == 0 {
		t.Fatal("aggressive eviction should have reclaimed the inactive file")
	}
	if got := cold.Kernel().FileCache().CachedPages(); got >= coldPages {
		t.Fatalf("inactive file kept %d of %d pages", got, coldPages)
	}
}

func TestSharedFileDescriptorsShareTree(t *testing.T) {
	v := newKernel(1_000_000)
	rt := NewForApproach(v, CrossPredictOpt)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "shared", 64<<20)
	f1, _ := rt.Open(tl, "shared")
	f2, _ := rt.Open(tl, "shared")
	if f1.sf != f2.sf {
		t.Fatal("descriptors of the same file should share state")
	}
	buf := make([]byte, 16384)
	for off := int64(0); off < 8<<20; off += 16384 {
		f1.ReadAt(tl, buf, off)
	}
	calls := rt.Stats().PrefetchCalls
	// fd2 streaming the same region should mostly hit the shared bitmap.
	tl2 := simtime.NewTimeline(tl.Now())
	for off := int64(0); off < 8<<20; off += 16384 {
		f2.ReadAt(tl2, buf, off)
	}
	st := rt.Stats()
	if st.SavedPrefetches == 0 {
		t.Fatal("second descriptor should save prefetches via shared tree")
	}
	if st.PrefetchCalls > calls*2 {
		t.Fatalf("shared state should curb duplicate prefetch calls: %d -> %d", calls, st.PrefetchCalls)
	}
}

func TestWriteUpdatesTree(t *testing.T) {
	v := newKernel(100000)
	rt := NewForApproach(v, CrossPredict)
	tl := simtime.NewTimeline(0)
	f, err := rt.Create(tl, "out")
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(tl, make([]byte, 64<<10), 0)
	if got := f.sf.tree.CachedCount(nil, 0, 16); got != 16 {
		t.Fatalf("tree shows %d cached blocks after write, want 16", got)
	}
}

func TestReverseStreamPrefetches(t *testing.T) {
	v := newKernel(1_000_000)
	rt := NewForApproach(v, CrossPredictOpt)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 64<<20)
	f, _ := rt.Open(tl, "big")
	buf := make([]byte, 16384)
	for off := int64(32 << 20); off >= 16<<20; off -= 16384 {
		f.ReadAt(tl, buf, off)
	}
	if rt.Stats().PrefetchedPages == 0 {
		t.Fatal("reverse stream should be detected and prefetched")
	}
}

func TestMmapScanPrefetches(t *testing.T) {
	v := newKernel(1_000_000)
	opt := CrossPredictOpt.Options()
	opt.MmapScanOps = 8
	rt := New(v, opt)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 64<<20)
	f, _ := rt.Open(tl, "big")
	m := rt.Mmap(tl, f)
	for off := int64(0); off < 8<<20; off += 64 << 10 {
		m.Load(tl, off, 64<<10, nil)
	}
	// The scanner should have prefetched ahead of the load frontier.
	if got := f.Kernel().FileCache().CachedPages(); got <= (8<<20)/4096 {
		t.Fatalf("mmap scanner did not prefetch ahead: %d pages", got)
	}
}

func TestFincorePollStep(t *testing.T) {
	v := newKernel(1_000_000)
	opt := Options{Enabled: true}.withDefaults()
	rt := New(v, opt)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 16<<20)
	f, _ := rt.Open(tl, "big")
	f.FincorePollStep(tl, 256)
	st := rt.Stats()
	if st.FincorePolls != 1 {
		t.Fatalf("polls = %d", st.FincorePolls)
	}
	if st.PrefetchCalls == 0 {
		t.Fatal("poll over cold file should issue readahead")
	}
	if v.SyscallCount(vfs.SysFincore) == 0 {
		t.Fatal("fincore syscall not issued")
	}
}

func TestSeekAndSequentialReadThroughLib(t *testing.T) {
	v := newKernel(100000)
	rt := NewForApproach(v, CrossPredictOpt)
	tl := simtime.NewTimeline(0)
	f, _ := rt.Create(tl, "x")
	f.WriteAt(tl, []byte("abcdefgh"), 0)
	buf := make([]byte, 4)
	f.Read(tl, buf)
	if string(buf) != "abcd" {
		t.Fatalf("read %q", buf)
	}
	f.SeekTo(4)
	f.Read(tl, buf)
	if string(buf) != "efgh" {
		t.Fatalf("read %q", buf)
	}
}
