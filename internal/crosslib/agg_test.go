package crosslib

import (
	"testing"

	"repro/internal/bitmap"
	"repro/internal/simtime"
)

// batchRuntime builds a BatchIntents-enabled runtime over a fresh kernel
// with one 64MB synthetic file open, returning the post-open stats as the
// baseline (open issues its own optimistic prefetch of the file head —
// tests park ranges beyond it and assert deltas).
func batchRuntime(t *testing.T, flushPages int64) (*Runtime, *File, *simtime.Timeline, Stats) {
	t.Helper()
	v := newKernel(1_000_000)
	opts := CrossPredictOpt.Options()
	opts.BatchIntents = true
	opts.BatchFlushPages = flushPages
	rt := New(v, opts)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 64<<20)
	f, err := rt.Open(tl, "big")
	if err != nil {
		t.Fatal(err)
	}
	return rt, f, tl, rt.Stats()
}

// park runs [lo, hi) through the shared tree (marking them requested,
// exactly as the hysteresis path does) and defers them into the
// aggregator.
func park(t *testing.T, f *File, tl *simtime.Timeline, lo, hi int64) {
	t.Helper()
	runs := f.sf.tree.NeedsPrefetch(tl, lo, hi)
	if len(runs) == 0 {
		t.Fatalf("park [%d,%d): nothing missing", lo, hi)
	}
	f.deferIntent(tl, runs)
}

func TestBatchIntentsParkThenVectoredFlush(t *testing.T) {
	rt, f, tl, base := batchRuntime(t, 256)
	cachedBase := f.Kernel().FileCache().CachedPages()
	park(t, f, tl, 1010, 1012)
	park(t, f, tl, 1020, 1022)
	park(t, f, tl, 1030, 1034)

	st := rt.Stats()
	if got := st.BatchedIntents - base.BatchedIntents; got != 3 {
		t.Fatalf("BatchedIntents = %d, want 3", got)
	}
	if st.PrefetchCalls != base.PrefetchCalls || st.VectoredFlushes != base.VectoredFlushes {
		t.Fatalf("parked intents crossed early: calls=%d flushes=%d",
			st.PrefetchCalls-base.PrefetchCalls, st.VectoredFlushes-base.VectoredFlushes)
	}
	// Parked runs keep their requested bits: a second query dedupes free.
	if runs := f.sf.tree.NeedsPrefetch(tl, 1010, 1012); len(runs) != 0 {
		t.Fatalf("parked run lost its requested bits: %v", runs)
	}

	f.FlushIntents(tl)
	st = rt.Stats()
	if got := st.VectoredFlushes - base.VectoredFlushes; got != 1 {
		t.Fatalf("VectoredFlushes = %d, want 1", got)
	}
	if got := st.PrefetchCalls - base.PrefetchCalls; got != 1 {
		t.Fatalf("PrefetchCalls = %d, want 1 vectored crossing for 3 intents", got)
	}
	if got := st.PrefetchedPages - base.PrefetchedPages; got != 8 {
		t.Fatalf("PrefetchedPages = %d, want 8", got)
	}
	// The kernel fetched exactly the parked pages, and the bitmap knows.
	if got := f.Kernel().FileCache().CachedPages() - cachedBase; got != 8 {
		t.Fatalf("kernel cached %d new pages, want 8", got)
	}
	for _, r := range [][2]int64{{1010, 1012}, {1020, 1022}, {1030, 1034}} {
		if runs := f.sf.tree.NeedsPrefetch(tl, r[0], r[1]); len(runs) != 0 {
			t.Fatalf("flushed range [%d,%d) still reads missing", r[0], r[1])
		}
	}
	// Nothing left parked: a second flush is a no-op.
	f.FlushIntents(tl)
	if st := rt.Stats(); st.VectoredFlushes-base.VectoredFlushes != 1 {
		t.Fatalf("empty flush crossed anyway: %d", st.VectoredFlushes-base.VectoredFlushes)
	}
}

func TestBatchIntentsSizeBoundAutoFlush(t *testing.T) {
	rt, f, tl, base := batchRuntime(t, 4)
	park(t, f, tl, 1100, 1102)
	if st := rt.Stats(); st.VectoredFlushes != base.VectoredFlushes {
		t.Fatal("flushed below the size bound")
	}
	park(t, f, tl, 1200, 1202) // reaches BatchFlushPages=4
	st := rt.Stats()
	if st.VectoredFlushes-base.VectoredFlushes != 1 || st.PrefetchCalls-base.PrefetchCalls != 1 {
		t.Fatalf("size bound should auto-flush: flushes=%d calls=%d",
			st.VectoredFlushes-base.VectoredFlushes, st.PrefetchCalls-base.PrefetchCalls)
	}
	if got := st.PrefetchedPages - base.PrefetchedPages; got != 4 {
		t.Fatalf("PrefetchedPages = %d, want 4", got)
	}
}

func TestBatchIntentsFlushOnOverlappingRead(t *testing.T) {
	rt, f, tl, base := batchRuntime(t, 256)
	park(t, f, tl, 1500, 1502)
	buf := make([]byte, 4096)
	if _, err := f.ReadAt(tl, buf, 1500*4096); err != nil {
		t.Fatal(err)
	}
	if st := rt.Stats(); st.VectoredFlushes-base.VectoredFlushes != 1 {
		t.Fatalf("read overlapping a parked run should flush it: %d",
			st.VectoredFlushes-base.VectoredFlushes)
	}
	// A read far from any parked run leaves the batch alone.
	park(t, f, tl, 8000, 8002)
	if _, err := f.ReadAt(tl, buf, 0); err != nil {
		t.Fatal(err)
	}
	if st := rt.Stats(); st.VectoredFlushes-base.VectoredFlushes != 1 {
		t.Fatalf("non-overlapping read flushed the batch: %d",
			st.VectoredFlushes-base.VectoredFlushes)
	}
}

func TestBatchIntentsCloseFlushes(t *testing.T) {
	rt, f, tl, base := batchRuntime(t, 256)
	park(t, f, tl, 1700, 1703)
	if err := f.Close(tl); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.VectoredFlushes-base.VectoredFlushes != 1 || st.PrefetchedPages-base.PrefetchedPages != 3 {
		t.Fatalf("close should flush parked intents: flushes=%d pages=%d",
			st.VectoredFlushes-base.VectoredFlushes, st.PrefetchedPages-base.PrefetchedPages)
	}
}

// TestWriteInvalidatesParkedIntents is the regression test for the
// write-path aggregator leak: WriteAt marked the written pages cached in
// the shared tree but left any overlapping parked intent in the per-file
// aggregator, so the next vectored flush burned a kernel crossing
// re-requesting pages the write had just made resident.
func TestWriteInvalidatesParkedIntents(t *testing.T) {
	rt, f, tl, _ := batchRuntime(t, 256)
	bs := rt.VFS().BlockSize()

	// Fully covered: the write satisfies everything parked, so the flush
	// must not cross into the kernel at all.
	park(t, f, tl, 2010, 2014)
	base := rt.Stats()
	if _, err := f.WriteAt(tl, make([]byte, 4*bs), 2010*bs); err != nil {
		t.Fatal(err)
	}
	f.FlushIntents(tl)
	st := rt.Stats()
	if d := st.VectoredFlushes - base.VectoredFlushes; d != 0 {
		t.Fatalf("flush after covering write crossed %d times, want 0 (wasted crossing)", d)
	}
	if d := st.PrefetchCalls - base.PrefetchCalls; d != 0 {
		t.Fatalf("PrefetchCalls delta = %d, want 0", d)
	}

	// Partial overlap: the written middle drops out, the edges stay
	// parked as split runs with the page count reconciled.
	park(t, f, tl, 3050, 3058)
	if _, err := f.WriteAt(tl, make([]byte, 2*bs), 3052*bs); err != nil {
		t.Fatal(err)
	}
	f.sf.aggMu.Lock()
	agg := append([]bitmap.Run(nil), f.sf.agg...)
	pages := f.sf.aggPages
	f.sf.aggMu.Unlock()
	want := []bitmap.Run{{Lo: 3050, Hi: 3052}, {Lo: 3054, Hi: 3058}}
	if len(agg) != 2 || agg[0] != want[0] || agg[1] != want[1] {
		t.Fatalf("aggregator after partial overwrite = %v, want %v", agg, want)
	}
	if pages != 6 {
		t.Fatalf("aggPages = %d, want 6", pages)
	}
	// The surviving edges still flush as one vectored crossing.
	base = rt.Stats()
	f.FlushIntents(tl)
	st = rt.Stats()
	if st.VectoredFlushes-base.VectoredFlushes != 1 || st.PrefetchedPages-base.PrefetchedPages != 6 {
		t.Fatalf("split-run flush: flushes=%d pages=%d, want 1/6",
			st.VectoredFlushes-base.VectoredFlushes, st.PrefetchedPages-base.PrefetchedPages)
	}
}
