package crosslib

import (
	"testing"

	"repro/internal/faultinject"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// transientReads makes every read fail once per site, then clear.
func transientReads(repeats int) *faultinject.Injector {
	return faultinject.New(faultinject.Plan{
		Seed:             7,
		TransientRepeats: repeats,
		Ranges:           []faultinject.RangeFault{{Lo: 0, Hi: 1 << 40, Class: faultinject.Transient, Reads: true}},
	})
}

// TestPrefetchRetriesTransient: a transient device fault under a
// background prefetch is absorbed by the library's backoff-retry — the
// workload still completes and retries are accounted.
func TestPrefetchRetriesTransient(t *testing.T) {
	v := newKernel(1_000_000)
	rt := NewForApproach(v, CrossPredictOpt)
	rec := telemetry.NewRecorder(0)
	rt.SetTelemetry(rec)
	v.SetTelemetry(rec)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 32<<20)
	v.Device().SetFaultInjector(transientReads(1)) // each site fails once

	f, err := rt.Open(tl, "big")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16384)
	for off := int64(0); off < 8<<20; off += int64(len(buf)) {
		if _, err := f.ReadAt(tl, buf, off); err != nil {
			t.Fatalf("read at %d: %v", off, err)
		}
	}
	st := rt.Stats()
	if st.PrefetchRetries == 0 {
		t.Fatal("no prefetch retries under transient faults")
	}
	if st.BreakerTrips != 0 {
		t.Fatalf("breaker tripped %d times although every retry succeeds", st.BreakerTrips)
	}
	if got := rec.CounterValue(telemetry.CtrLibPrefetchRetries); got != st.PrefetchRetries {
		t.Fatalf("telemetry retries %d != stats retries %d", got, st.PrefetchRetries)
	}
}

// TestBreakerTripsAndRecovers: persistent prefetch failures open the
// per-file breaker (background prefetch stops; demand reads carry on);
// after the fault clears and the cool-off elapses, a probe prefetch
// closes it again.
func TestBreakerTripsAndRecovers(t *testing.T) {
	v := newKernel(1_000_000)
	opt := CrossPredictOpt.Options()
	opt.BreakerThreshold = 2
	opt.BreakerCooloff = 2 * simtime.Millisecond
	rt := New(v, opt)
	rec := telemetry.NewRecorder(0)
	rt.SetTelemetry(rec)
	v.SetTelemetry(rec)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 64<<20)
	v.Device().SetFaultInjector(faultinject.New(faultinject.Plan{
		Seed:   7,
		Ranges: []faultinject.RangeFault{{Lo: 0, Hi: 1 << 40, Class: faultinject.Persistent, Reads: true}},
	}))

	f, err := rt.Open(tl, "big")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16384)
	for off := int64(0); off < 8<<20; off += int64(len(buf)) {
		f.ReadAt(tl, buf, off) // demand reads fail too; keep going
	}
	st := rt.Stats()
	if st.BreakerTrips == 0 {
		t.Fatal("breaker never tripped under persistent faults")
	}
	if st.DroppedBreaker == 0 {
		t.Fatal("no prefetch intents dropped while the breaker was open")
	}

	// Fault clears; past the cool-off the next prefetch probes and the
	// breaker closes.
	v.Device().SetFaultInjector(nil)
	tl.WaitUntil(tl.Now().Add(10*simtime.Millisecond), simtime.WaitIO)
	for off := int64(8 << 20); off < 24<<20; off += int64(len(buf)) {
		if _, err := f.ReadAt(tl, buf, off); err != nil {
			t.Fatalf("read after fault cleared: %v", err)
		}
	}
	st = rt.Stats()
	if st.BreakerRecoveries == 0 {
		t.Fatal("breaker never recovered after the fault cleared")
	}
	if got := rec.CounterValue(telemetry.CtrLibBreakerTrips); got != st.BreakerTrips {
		t.Fatalf("telemetry trips %d != stats trips %d", got, st.BreakerTrips)
	}
	if got := rec.CounterValue(telemetry.CtrLibBreakerRecoveries); got != st.BreakerRecoveries {
		t.Fatalf("telemetry recoveries %d != stats recoveries %d", got, st.BreakerRecoveries)
	}
	// The file must still prefetch normally once closed.
	if rt.Stats().PrefetchedPages == 0 {
		t.Fatal("no pages prefetched after recovery")
	}
}

// faultRun executes one sequential-read workload under a transient
// fault plan and returns the observables a deterministic simulation
// must reproduce exactly.
type faultRunResult struct {
	makespan  simtime.Duration
	stats     Stats
	retries   int64
	faults    int64
	issued    int64
	demandRtr int64
}

func faultRun(t *testing.T, faultSeed int64) faultRunResult {
	t.Helper()
	v := newKernel(1_000_000)
	opt := CrossPredictOpt.Options()
	opt.FaultSeed = faultSeed
	rt := New(v, opt)
	rec := telemetry.NewRecorder(0)
	rt.SetTelemetry(rec)
	v.SetTelemetry(rec)
	v.Device().SetTelemetry(rec)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 32<<20)
	v.Device().SetFaultInjector(transientReads(1))

	f, err := rt.Open(tl, "big")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16384)
	for off := int64(0); off < 8<<20; off += int64(len(buf)) {
		if _, err := f.ReadAt(tl, buf, off); err != nil {
			t.Fatal(err)
		}
	}
	return faultRunResult{
		makespan:  tl.Elapsed(),
		stats:     rt.Stats(),
		retries:   rec.CounterValue(telemetry.CtrLibPrefetchRetries),
		faults:    rec.CounterValue(telemetry.CtrDeviceInjectedFaults),
		issued:    rec.CounterValue(telemetry.CtrLibIssuedPages),
		demandRtr: rec.CounterValue(telemetry.CtrVFSDemandRetries),
	}
}

// TestRetryScheduleDeterministic: identical seed and plan must yield an
// identical virtual-time schedule (makespan) and identical fault,
// retry, and prefetch accounting across independent runs — the whole
// point of hash-based fault decisions and seeded backoff jitter.
func TestRetryScheduleDeterministic(t *testing.T) {
	a := faultRun(t, 42)
	b := faultRun(t, 42)
	if a.makespan != b.makespan {
		t.Fatalf("makespan differs across identical runs: %v vs %v", a.makespan, b.makespan)
	}
	if a != b {
		t.Fatalf("run observables differ:\n a=%+v\n b=%+v", a, b)
	}
	if a.retries == 0 || a.faults == 0 {
		t.Fatalf("degenerate run (retries=%d faults=%d): plan injected nothing", a.retries, a.faults)
	}
}
