package crosslib

import (
	"testing"

	"repro/internal/faultinject"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// transientReads makes every read fail once per site, then clear.
func transientReads(repeats int) *faultinject.Injector {
	return faultinject.New(faultinject.Plan{
		Seed:             7,
		TransientRepeats: repeats,
		Ranges:           []faultinject.RangeFault{{Lo: 0, Hi: 1 << 40, Class: faultinject.Transient, Reads: true}},
	})
}

// TestPrefetchRetriesTransient: a transient device fault under a
// background prefetch is absorbed by the library's backoff-retry — the
// workload still completes and retries are accounted.
func TestPrefetchRetriesTransient(t *testing.T) {
	v := newKernel(1_000_000)
	rt := NewForApproach(v, CrossPredictOpt)
	rec := telemetry.NewRecorder(0)
	rt.SetTelemetry(rec)
	v.SetTelemetry(rec)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 32<<20)
	v.Device().SetFaultInjector(transientReads(1)) // each site fails once

	f, err := rt.Open(tl, "big")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16384)
	for off := int64(0); off < 8<<20; off += int64(len(buf)) {
		if _, err := f.ReadAt(tl, buf, off); err != nil {
			t.Fatalf("read at %d: %v", off, err)
		}
	}
	st := rt.Stats()
	if st.PrefetchRetries == 0 {
		t.Fatal("no prefetch retries under transient faults")
	}
	if st.BreakerTrips != 0 {
		t.Fatalf("breaker tripped %d times although every retry succeeds", st.BreakerTrips)
	}
	if got := rec.CounterValue(telemetry.CtrLibPrefetchRetries); got != st.PrefetchRetries {
		t.Fatalf("telemetry retries %d != stats retries %d", got, st.PrefetchRetries)
	}
}

// TestBreakerTripsAndRecovers: persistent prefetch failures open the
// per-file breaker (background prefetch stops; demand reads carry on);
// after the fault clears and the cool-off elapses, a probe prefetch
// closes it again.
func TestBreakerTripsAndRecovers(t *testing.T) {
	v := newKernel(1_000_000)
	opt := CrossPredictOpt.Options()
	opt.BreakerThreshold = 2
	opt.BreakerCooloff = 2 * simtime.Millisecond
	rt := New(v, opt)
	rec := telemetry.NewRecorder(0)
	rt.SetTelemetry(rec)
	v.SetTelemetry(rec)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 64<<20)
	v.Device().SetFaultInjector(faultinject.New(faultinject.Plan{
		Seed:   7,
		Ranges: []faultinject.RangeFault{{Lo: 0, Hi: 1 << 40, Class: faultinject.Persistent, Reads: true}},
	}))

	f, err := rt.Open(tl, "big")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16384)
	for off := int64(0); off < 8<<20; off += int64(len(buf)) {
		f.ReadAt(tl, buf, off) // demand reads fail too; keep going
	}
	st := rt.Stats()
	if st.BreakerTrips == 0 {
		t.Fatal("breaker never tripped under persistent faults")
	}
	if st.DroppedBreaker == 0 {
		t.Fatal("no prefetch intents dropped while the breaker was open")
	}

	// Fault clears; past the cool-off the next prefetch probes and the
	// breaker closes.
	v.Device().SetFaultInjector(nil)
	tl.WaitUntil(tl.Now().Add(10*simtime.Millisecond), simtime.WaitIO)
	for off := int64(8 << 20); off < 24<<20; off += int64(len(buf)) {
		if _, err := f.ReadAt(tl, buf, off); err != nil {
			t.Fatalf("read after fault cleared: %v", err)
		}
	}
	st = rt.Stats()
	if st.BreakerRecoveries == 0 {
		t.Fatal("breaker never recovered after the fault cleared")
	}
	if got := rec.CounterValue(telemetry.CtrLibBreakerTrips); got != st.BreakerTrips {
		t.Fatalf("telemetry trips %d != stats trips %d", got, st.BreakerTrips)
	}
	if got := rec.CounterValue(telemetry.CtrLibBreakerRecoveries); got != st.BreakerRecoveries {
		t.Fatalf("telemetry recoveries %d != stats recoveries %d", got, st.BreakerRecoveries)
	}
	// The file must still prefetch normally once closed.
	if rt.Stats().PrefetchedPages == 0 {
		t.Fatal("no pages prefetched after recovery")
	}
}

// faultRun executes one sequential-read workload under a transient
// fault plan and returns the observables a deterministic simulation
// must reproduce exactly.
type faultRunResult struct {
	makespan  simtime.Duration
	stats     Stats
	retries   int64
	faults    int64
	issued    int64
	demandRtr int64
}

func faultRun(t *testing.T, faultSeed int64) faultRunResult {
	t.Helper()
	v := newKernel(1_000_000)
	opt := CrossPredictOpt.Options()
	opt.FaultSeed = faultSeed
	rt := New(v, opt)
	rec := telemetry.NewRecorder(0)
	rt.SetTelemetry(rec)
	v.SetTelemetry(rec)
	v.Device().SetTelemetry(rec)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 32<<20)
	v.Device().SetFaultInjector(transientReads(1))

	f, err := rt.Open(tl, "big")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16384)
	for off := int64(0); off < 8<<20; off += int64(len(buf)) {
		if _, err := f.ReadAt(tl, buf, off); err != nil {
			t.Fatal(err)
		}
	}
	return faultRunResult{
		makespan:  tl.Elapsed(),
		stats:     rt.Stats(),
		retries:   rec.CounterValue(telemetry.CtrLibPrefetchRetries),
		faults:    rec.CounterValue(telemetry.CtrDeviceInjectedFaults),
		issued:    rec.CounterValue(telemetry.CtrLibIssuedPages),
		demandRtr: rec.CounterValue(telemetry.CtrVFSDemandRetries),
	}
}

// TestRetryScheduleDeterministic: identical seed and plan must yield an
// identical virtual-time schedule (makespan) and identical fault,
// retry, and prefetch accounting across independent runs — the whole
// point of hash-based fault decisions and seeded backoff jitter.
func TestRetryScheduleDeterministic(t *testing.T) {
	a := faultRun(t, 42)
	b := faultRun(t, 42)
	if a.makespan != b.makespan {
		t.Fatalf("makespan differs across identical runs: %v vs %v", a.makespan, b.makespan)
	}
	if a != b {
		t.Fatalf("run observables differ:\n a=%+v\n b=%+v", a, b)
	}
	if a.retries == 0 || a.faults == 0 {
		t.Fatalf("degenerate run (retries=%d faults=%d): plan injected nothing", a.retries, a.faults)
	}
}

// persistentReads fails every device read definitively.
func persistentReads() *faultinject.Injector {
	return faultinject.New(faultinject.Plan{
		Seed:   7,
		Ranges: []faultinject.RangeFault{{Lo: 0, Hi: 1 << 40, Class: faultinject.Persistent, Reads: true}},
	})
}

// brkState snapshots a file's breaker under its lock.
func brkState(f *File) (fails int, open bool) {
	f.sf.brk.mu.Lock()
	defer f.sf.brk.mu.Unlock()
	return f.sf.brk.fails, f.sf.brk.open
}

// TestMultiRunPrefetchFeedsBreakerOnce is the regression test for the
// per-range breaker feed: a single background job whose intent splits
// into several runs used to issue every run against a definitively
// failing device, feeding the breaker once per run — one bad multi-run
// job tripped a threshold-3 breaker alone — and burning a kernel
// crossing per run after the first had already proven the device dead.
// The job must stop at the first definitive failure, feed the breaker
// exactly once, and give the unissued runs' requested bits back.
func TestMultiRunPrefetchFeedsBreakerOnce(t *testing.T) {
	v := newKernel(1_000_000)
	opt := CrossPredictOpt.Options()
	opt.BreakerThreshold = 3
	rt := New(v, opt)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 64<<20)
	f, err := rt.Open(tl, "big")
	if err != nil {
		t.Fatal(err)
	}
	// Split [1000, 1120) into three missing runs by pre-marking two gaps
	// cached, then fail every read definitively.
	f.sf.tree.MarkCached(tl, 1040, 1044)
	f.sf.tree.MarkCached(tl, 1080, 1084)
	v.Device().SetFaultInjector(persistentReads())
	base := rt.Stats()

	f.prefetchAsync(tl, 1000, 120, false) // job runs inline on the worker pool

	fails, open := brkState(f)
	if fails != 1 {
		t.Fatalf("one failing job fed the breaker %d times, want exactly 1", fails)
	}
	if open {
		t.Fatal("threshold-3 breaker tripped by a single job")
	}
	st := rt.Stats()
	if st.BreakerTrips != base.BreakerTrips {
		t.Fatalf("breaker tripped %d times", st.BreakerTrips-base.BreakerTrips)
	}
	if d := st.PrefetchCalls - base.PrefetchCalls; d != 1 {
		t.Fatalf("failing job crossed %d times, want 1 (stop at first definitive failure)", d)
	}
	// Requested-bit reconciliation: every run — issued and unissued — is
	// missing again, so nothing is stranded as requested-forever.
	runs := f.sf.tree.NeedsPrefetch(tl, 1000, 1120)
	want := [][2]int64{{1000, 1040}, {1044, 1080}, {1084, 1120}}
	if len(runs) != len(want) {
		t.Fatalf("post-failure missing runs = %v, want %v", runs, want)
	}
	for i, r := range runs {
		if r.Lo != want[i][0] || r.Hi != want[i][1] {
			t.Fatalf("post-failure missing runs = %v, want %v", runs, want)
		}
	}
}

// TestVectoredFlushFailureFeedsBreakerOnce pins the vectored path's
// failure contract: a definitive device failure under one vectored
// readahead_info flush of several parked runs feeds the breaker exactly
// once — not once per range — and gives every parked run's requested
// bits back so later intents can retry them.
func TestVectoredFlushFailureFeedsBreakerOnce(t *testing.T) {
	rt, f, tl, base := batchRuntime(t, 256)
	park(t, f, tl, 2010, 2014)
	park(t, f, tl, 2020, 2024)
	park(t, f, tl, 2030, 2034)
	rt.VFS().Device().SetFaultInjector(persistentReads())
	failsBefore, _ := brkState(f)

	f.FlushIntents(tl)

	fails, open := brkState(f)
	if fails-failsBefore != 1 {
		t.Fatalf("one failed vectored flush fed the breaker %d times, want exactly 1", fails-failsBefore)
	}
	if open {
		t.Fatal("breaker tripped by a single vectored failure")
	}
	st := rt.Stats()
	if d := st.PrefetchCalls - base.PrefetchCalls; d != 1 {
		t.Fatalf("failed vectored flush crossed %d times, want 1", d)
	}
	rt.VFS().Device().SetFaultInjector(nil)
	for _, w := range [][2]int64{{2010, 2014}, {2020, 2024}, {2030, 2034}} {
		runs := f.sf.tree.NeedsPrefetch(tl, w[0], w[1])
		if len(runs) != 1 || runs[0].Lo != w[0] || runs[0].Hi != w[1] {
			t.Fatalf("parked run [%d,%d) not given back after failure: %v", w[0], w[1], runs)
		}
		f.sf.tree.ClearRequested(tl, w[0], w[1])
	}
}
