package crosslib

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bitmap"
	"repro/internal/predictor"
	"repro/internal/rangetree"
	"repro/internal/simtime"
	"repro/internal/telemetry"
	"repro/internal/vfs"
)

// Runtime is one process's CROSS-LIB instance.
type Runtime struct {
	v   *vfs.VFS
	opt Options

	workers *simtime.WorkerPool

	// The per-inode shared-state table is striped so concurrent open and
	// close traffic on different files doesn't serialize on one lock.
	fileShards [sfShardCount]sfShard

	ops atomic.Int64 // intercepted operations, for eviction throttling

	evictMu sync.Mutex // serializes budget enforcement passes

	// rec, when non-nil, receives the prefetch decision trace and the
	// library-side accounting counters (telemetry opt-in).
	rec *telemetry.Recorder

	// tr, when non-nil, opens request-scoped root spans on the library's
	// top-level operations; the layers below pick the span context up from
	// the timeline (tracing opt-in).
	tr *telemetry.Tracer

	// score, when non-nil, receives the per-(inode,arm) shadow-mode
	// effectiveness bookings of the predictor ensemble (scorecard opt-in).
	score *telemetry.Scorecard

	// Stats.
	prefetchCalls    atomic.Int64 // readahead_info calls issued
	savedPrefetch    atomic.Int64 // prefetches skipped via cache awareness
	prefetchedPgs    atomic.Int64
	evictedPgs       atomic.Int64
	fincorePolls     atomic.Int64
	openPrefetches   atomic.Int64
	droppedPrefetch  atomic.Int64
	prefetchRetries  atomic.Int64
	breakerTrips     atomic.Int64
	breakerRecovered atomic.Int64
	droppedBreaker   atomic.Int64
	batchedIntents   atomic.Int64
	vectoredFlushes  atomic.Int64
	armPromotions    atomic.Int64
}

// sfShardCount stripes the inode table (power of two; selection is a mask).
const sfShardCount = 8

// sfShard is one stripe of the inode → sharedFile table.
type sfShard struct {
	mu sync.Mutex
	m  map[int64]*sharedFile
}

// fileShard maps an inode to its table stripe.
func (rt *Runtime) fileShard(inoID int64) *sfShard {
	h := uint64(inoID) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	return &rt.fileShards[h&(sfShardCount-1)]
}

// sharedFile is the per-inode state shared by all descriptors of a file:
// the user-level range tree (the imported cache bitmap) and activity
// tracking for the inactive-file LRU.
type sharedFile struct {
	inoID int64
	name  string
	kf    *vfs.File // any descriptor, used for background prefetch/evict
	tree  *rangetree.Tree
	refs  int // live descriptors, guarded by the owning shard's mu

	lastAccess atomic.Int64 // virtual time of last access
	fetchAll   atomic.Bool  // whole-file prefetch kicked off

	// ens, when non-nil (Options.Ensemble), is the per-inode competing-
	// predictor ensemble; ensMu serializes its Observe calls across the
	// inode's descriptors. The ensemble owns its own arm-0 counter — the
	// per-descriptor predictor stays untouched for the non-ensemble path.
	ensMu sync.Mutex
	ens   *predictor.Ensemble

	brk breaker // background-prefetch circuit breaker

	// Intent aggregator (Options.BatchIntents): small prefetch intents
	// parked for one vectored readahead_info crossing. Runs are sorted
	// and disjoint; their requested bits stay set in the tree while
	// parked, so follow-up windows dedupe against them for free.
	aggMu    sync.Mutex
	agg      []bitmap.Run
	aggPages int64
}

// breaker is the per-file circuit breaker over background prefetch
// (§fault tolerance): repeated device failures open it, suppressing
// prefetch so the file degrades to demand reads; after a cool-off it
// half-opens and a single probe prefetch decides whether it closes.
type breaker struct {
	mu       sync.Mutex
	fails    int          // consecutive background prefetch failures
	open     bool         // prefetch suppressed
	reopenAt simtime.Time // when an open breaker next admits a probe
}

// allow reports whether a prefetch may proceed at now: always while
// closed, and past reopenAt while open (half-open probing). The probe
// is resolved where a prefetch is actually issued — intents that pass
// this check but die on the way (already cached, batching hysteresis)
// don't consume it; a failed probe pushes reopenAt out again.
func (b *breaker) allow(now simtime.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.open || now >= b.reopenAt
}

// failure records a definitive prefetch failure; reports whether this
// one tripped the breaker (closed -> open edge).
func (b *breaker) failure(now simtime.Time, threshold int, cooloff simtime.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	b.reopenAt = now.Add(cooloff)
	if b.open {
		return false // failed half-open probe: stay open, extend cool-off
	}
	if b.fails >= threshold {
		b.open = true
		return true
	}
	return false
}

// success records a prefetch success; reports whether it closed an open
// breaker (a recovery).
func (b *breaker) success() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.open {
		b.open = false
		return true
	}
	return false
}

func (sf *sharedFile) touch(at simtime.Time) {
	for {
		cur := sf.lastAccess.Load()
		if int64(at) <= cur || sf.lastAccess.CompareAndSwap(cur, int64(at)) {
			return
		}
	}
}

// New returns a runtime over the given kernel with the given options.
func New(v *vfs.VFS, opt Options) *Runtime {
	opt = opt.withDefaults()
	rt := &Runtime{
		v:       v,
		opt:     opt,
		workers: simtime.NewWorkerPool(opt.Workers, 0),
	}
	for i := range rt.fileShards {
		rt.fileShards[i].m = make(map[int64]*sharedFile)
	}
	return rt
}

// NewForApproach returns a runtime configured for a paper approach.
func NewForApproach(v *vfs.VFS, a Approach) *Runtime {
	return New(v, a.Options())
}

// VFS exposes the kernel below the runtime.
func (rt *Runtime) VFS() *vfs.VFS { return rt.v }

// SetTelemetry installs the telemetry recorder (nil disables).
func (rt *Runtime) SetTelemetry(rec *telemetry.Recorder) { rt.rec = rec }

// SetTracer installs the span tracer (nil disables tracing).
func (rt *Runtime) SetTracer(tr *telemetry.Tracer) { rt.tr = tr }

// Tracer reports the installed span tracer (nil when tracing is off).
func (rt *Runtime) Tracer() *telemetry.Tracer { return rt.tr }

// SetScorecard installs the windowed scorecard sink for the ensemble's
// shadow-mode bookings (nil disables).
func (rt *Runtime) SetScorecard(s *telemetry.Scorecard) { rt.score = s }

// Scorecard reports the installed scorecard sink (nil when off).
func (rt *Runtime) Scorecard() *telemetry.Scorecard { return rt.score }

// SharedFiles reports live per-inode state entries (leak detection).
func (rt *Runtime) SharedFiles() int {
	n := 0
	for i := range rt.fileShards {
		fs := &rt.fileShards[i]
		fs.mu.Lock()
		n += len(fs.m)
		fs.mu.Unlock()
	}
	return n
}

// snapshotFiles collects every live sharedFile across the table stripes.
func (rt *Runtime) snapshotFiles() []*sharedFile {
	var files []*sharedFile
	for i := range rt.fileShards {
		fs := &rt.fileShards[i]
		fs.mu.Lock()
		for _, sf := range fs.m {
			files = append(files, sf)
		}
		fs.mu.Unlock()
	}
	return files
}

// Options reports the active configuration.
func (rt *Runtime) Options() Options { return rt.opt }

// Stats is a snapshot of runtime counters.
type Stats struct {
	PrefetchCalls   int64 // readahead_info calls issued by the library
	SavedPrefetches int64 // prefetch intents satisfied from user bitmaps
	PrefetchedPages int64
	EvictedPages    int64
	FincorePolls    int64
	OpenPrefetches  int64
	DroppedPrefetch int64
	WorkerJobs      int64
	// Fault-tolerance counters: transient-fault retries issued, per-file
	// breaker trips and recoveries, and prefetch intents dropped while a
	// breaker was open.
	PrefetchRetries   int64
	BreakerTrips      int64
	BreakerRecoveries int64
	DroppedBreaker    int64
	// Intent-aggregator counters: small intents parked instead of
	// dropped, and vectored readahead_info crossings issued by flushes.
	BatchedIntents  int64
	VectoredFlushes int64
	// ArmPromotions counts live-arm changes by the ensemble's bandit.
	ArmPromotions int64
}

// Stats snapshots the runtime counters.
func (rt *Runtime) Stats() Stats {
	return Stats{
		PrefetchCalls:   rt.prefetchCalls.Load(),
		SavedPrefetches: rt.savedPrefetch.Load(),
		PrefetchedPages: rt.prefetchedPgs.Load(),
		EvictedPages:    rt.evictedPgs.Load(),
		FincorePolls:    rt.fincorePolls.Load(),
		OpenPrefetches:  rt.openPrefetches.Load(),
		DroppedPrefetch: rt.droppedPrefetch.Load(),
		WorkerJobs:      rt.workers.Jobs(),

		PrefetchRetries:   rt.prefetchRetries.Load(),
		BreakerTrips:      rt.breakerTrips.Load(),
		BreakerRecoveries: rt.breakerRecovered.Load(),
		DroppedBreaker:    rt.droppedBreaker.Load(),
		BatchedIntents:    rt.batchedIntents.Load(),
		VectoredFlushes:   rt.vectoredFlushes.Load(),
		ArmPromotions:     rt.armPromotions.Load(),
	}
}

// ArmScore is one arm's entry in a PredictorRow.
type ArmScore struct {
	Arm   string  `json:"arm"`
	Score float64 `json:"score"`
	Live  bool    `json:"live"`
}

// PredictorRow is one inode's live ensemble state for the admin plane.
type PredictorRow struct {
	Ino        int64      `json:"ino"`
	Name       string     `json:"name,omitempty"`
	Live       string     `json:"live"`
	Observes   int64      `json:"observes"`
	Promotions int64      `json:"promotions"`
	Arms       []ArmScore `json:"arms"`
}

// PredictorTable snapshots every live inode's ensemble — live arm, bandit
// scores per arm, observation and promotion totals — sorted by inode so
// the output is deterministic. Empty when Options.Ensemble is off.
func (rt *Runtime) PredictorTable() []PredictorRow {
	var rows []PredictorRow
	for _, sf := range rt.snapshotFiles() {
		sf.ensMu.Lock()
		e := sf.ens
		if e == nil {
			sf.ensMu.Unlock()
			continue
		}
		row := PredictorRow{
			Ino:        sf.inoID,
			Name:       sf.name,
			Live:       e.Live().String(),
			Observes:   e.Observes(),
			Promotions: e.Promotions(),
		}
		for a := telemetry.Arm(1); a < telemetry.NumArms; a++ {
			row.Arms = append(row.Arms, ArmScore{
				Arm:   a.String(),
				Score: e.Score(a),
				Live:  a == e.Live(),
			})
		}
		sf.ensMu.Unlock()
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Ino < rows[j].Ino })
	return rows
}

// shared returns (creating on demand) the shared per-inode state.
func (rt *Runtime) shared(kf *vfs.File, name string) *sharedFile {
	ino := kf.Inode().ID()
	fs := rt.fileShard(ino)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	sf, ok := fs.m[ino]
	if !ok {
		sf = &sharedFile{
			inoID: ino,
			name:  name,
			kf:    kf,
			tree:  rangetree.New(rt.opt.RangeTreeSpan, rt.v.Config().Costs),
		}
		if rt.opt.Ensemble && rt.opt.Predict {
			sf.ens = predictor.NewEnsemble(rt.opt.ensembleConfig(), ino)
			// Shadow books only earn credit for coverage the system does
			// not already have — without this every arm free-rides on the
			// live arm's real prefetches and the bandit promotes redundant
			// challengers. Coverage = exported kernel residency (§4.2
			// truth, immune to stale lib belief) plus in-flight requests.
			fc := kf.FileCache()
			sf.ens.SetFilter(func(lo, hi int64) (int64, int64) {
				lo, hi = fc.NonResidentSpan(lo, hi)
				return sf.tree.UnrequestedSpan(lo, hi)
			})
		}
		fs.m[ino] = sf
	}
	sf.refs++
	return sf
}

// DropCaches resets the runtime's user-level cache belief (paired with a
// kernel-level drop between experiment phases).
func (rt *Runtime) DropCaches(tl *simtime.Timeline) {
	for _, sf := range rt.snapshotFiles() {
		sf.tree.ClearCached(tl, 0, sf.kf.Inode().Blocks())
		sf.fetchAll.Store(false)
	}
}

// budget reports the effective page budget the runtime works against.
func (rt *Runtime) budget() int64 {
	cap := rt.v.Cache().Capacity()
	if rt.opt.MemoryBudgetPages > 0 && rt.opt.MemoryBudgetPages < cap {
		return rt.opt.MemoryBudgetPages
	}
	return cap
}

// freeFrac reports free budget as a fraction of the budget.
func (rt *Runtime) freeFrac() float64 {
	b := rt.budget()
	free := b - rt.v.Cache().Used()
	if free < 0 {
		free = 0
	}
	return float64(free) / float64(b)
}

// tick counts one intercepted operation.
func (rt *Runtime) tick() int64 { return rt.ops.Add(1) }

// maybeEvict runs the aggressive reclamation policy (§4.6): when the
// process budget is constrained, evict inactive files front-to-back, then
// LRU ranges of the coldest active files, via fadvise(DONTNEED).
func (rt *Runtime) maybeEvict(tl *simtime.Timeline, op int64) {
	if !rt.opt.AggressiveEvict {
		return
	}
	if op%rt.opt.EvictCheckOps != 0 {
		return
	}
	if rt.freeFrac() >= rt.opt.LowWaterFrac {
		return
	}
	now := tl.Now()
	rt.workers.Run(now, func(wtl *simtime.Timeline) {
		rt.evictPass(wtl, now)
	})
}

// evictPass frees just enough budget to restore prefetch headroom:
// whole inactive files first (front of the inactive LRU list), then the
// least recently touched ranges of the coldest files, via
// fadvise(DONTNEED) — the paper's two-pronged reclamation (§4.6).
func (rt *Runtime) evictPass(wtl *simtime.Timeline, now simtime.Time) {
	rt.evictMu.Lock()
	defer rt.evictMu.Unlock()

	// Free enough to climb back above the low watermark with margin —
	// eager enough to keep prefetching alive, modest enough not to
	// thrash pages the readers are about to use.
	budget := rt.budget()
	wantFree := int64(float64(budget) * (rt.opt.LowWaterFrac + 0.05))
	target := wantFree - (budget - rt.v.Cache().Used())
	if target <= 0 {
		return
	}

	// Snapshot files ordered by last access (coldest first).
	candidates := rt.snapshotFiles()
	sort.Slice(candidates, func(i, j int) bool {
		return candidates[i].lastAccess.Load() < candidates[j].lastAccess.Load()
	})

	freed := int64(0)
	// Pass 1: whole inactive files. Credit only what the fadvise actually
	// freed (before/after residency), not the pre-call CachedPages count:
	// pages beyond EOF after a truncate, pages another thread re-faults
	// concurrently, or dirty pages a flush pins can all survive the
	// DONTNEED, and crediting them would end the pass while the budget is
	// still over target.
	for _, sf := range candidates {
		if freed >= target {
			return
		}
		idle := now.Sub(simtime.Time(sf.lastAccess.Load()))
		if idle < rt.opt.InactiveAge {
			break // list is sorted; the rest are hotter
		}
		before := sf.kf.FileCache().CachedPages()
		if before == 0 {
			continue
		}
		sf.kf.Fadvise(wtl, vfs.AdvDontNeed, 0, 0)
		sf.tree.ClearCached(wtl, 0, sf.kf.Inode().Blocks())
		freedNow := before - sf.kf.FileCache().CachedPages()
		rt.evictedPgs.Add(freedNow)
		freed += freedNow
	}
	// Pass 2: ranges that have genuinely gone inactive. Ranges touched
	// recently are left alone even under pressure — evicting the live
	// working set would only be re-fetched (churn), so when nothing is
	// cold the library lets the kernel LRU arbitrate.
	bs := rt.v.BlockSize()
	coldBefore := now.Add(-rt.opt.InactiveAge)
	for _, sf := range candidates {
		if freed >= target {
			return
		}
		for _, cr := range sf.tree.ColdestRanges(0) {
			if freed >= target {
				return
			}
			if cr.LastTouch >= coldBefore {
				break // sorted by recency: the rest are hotter
			}
			if cr.Requested > 0 {
				// An in-flight prefetch wavefront: LastTouch only moves
				// when a reader lands (MarkCached marks on completion or
				// read), so freshly requested spans ahead of a stream
				// look cold. Evicting them would discard exactly the
				// pages prefetch just paid for.
				continue
			}
			hi := cr.Hi
			if fb := sf.kf.Inode().Blocks(); hi > fb {
				hi = fb
			}
			if hi <= cr.Lo {
				continue
			}
			before := sf.kf.FileCache().CachedPages()
			sf.kf.Fadvise(wtl, vfs.AdvDontNeed, cr.Lo*bs, (hi-cr.Lo)*bs)
			sf.tree.ClearCached(wtl, cr.Lo, hi)
			freedNow := before - sf.kf.FileCache().CachedPages()
			rt.evictedPgs.Add(freedNow)
			freed += freedNow
		}
	}
}
