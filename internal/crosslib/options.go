// Package crosslib implements CROSS-LIB, the user-level half of
// CrossPrefetch (§4): a shim runtime that intercepts file I/O, detects
// per-descriptor access patterns, keeps a user-level copy of the kernel's
// per-inode cache bitmap in a concurrent range tree, prefetches through
// the readahead_info system call on background helper threads, and applies
// memory-budget-driven aggressive prefetching and eviction.
package crosslib

import (
	"repro/internal/predictor"
	"repro/internal/rangetree"
	"repro/internal/simtime"
)

// Options selects which CROSS-LIB mechanisms are active. The presets below
// correspond to the paper's comparison approaches (Table 2) and the
// incremental breakdown (Table 5).
type Options struct {
	// Enabled turns interception on; disabled means pure passthrough to
	// the kernel (the OSonly / APPonly baselines).
	Enabled bool
	// Visibility uses readahead_info and the imported cache bitmaps;
	// without it the library falls back to blind readahead(2) calls.
	Visibility bool
	// Predict drives prefetching from the per-descriptor pattern
	// detector. Mutually exclusive with FetchAll.
	Predict bool
	// FetchAll prefetches entire files on open using cache awareness
	// (the idealistic, memory-insensitive [+fetchall] policy).
	FetchAll bool
	// CoveragePrefetch populates missing blocks around random accesses
	// while free memory lasts — the budget-driven aggressive prefetching
	// that cuts compulsory misses (§4.6) even for non-sequential
	// patterns, which pattern windows alone cannot reach.
	CoveragePrefetch bool
	// OptLimits passes prefetch-limit overrides to the kernel (§4.7) and
	// enables the memory-budget aggressive prefetch policy.
	OptLimits bool
	// AggressiveEvict enables the budget-driven eviction of inactive
	// files via fadvise(DONTNEED) (§4.6).
	AggressiveEvict bool
	// RangeTreeSpan is the range-tree node width in blocks; 0 selects a
	// single-node tree (the per-file-bitmap-lock baseline of Table 5).
	RangeTreeSpan int64
	// Workers is the number of background prefetch helper threads
	// (the artifact's NR_WORKERS_VAR).
	Workers int
	// OpenPrefetchBytes is the optimistic prefetch issued on open under
	// the aggressive policy (paper default: 2MB).
	OpenPrefetchBytes int64
	// MaxPrefetchBytes caps a single prefetch request (paper: 64MB).
	MaxPrefetchBytes int64
	// HighWaterFrac and LowWaterFrac are free-memory fractions: above
	// HighWaterFrac of free memory, aggressive sizes are allowed; below
	// LowWaterFrac, all prefetching halts (§4.6).
	HighWaterFrac, LowWaterFrac float64
	// MemoryBudgetPages is the per-process cache budget; 0 means the
	// whole system budget.
	MemoryBudgetPages int64
	// InactiveAge marks a file inactive after this much virtual time
	// without access (paper: 30s on a real machine; scaled down to match
	// simulated experiment durations).
	InactiveAge simtime.Duration
	// EvictCheckOps throttles budget checks to once per this many
	// intercepted operations.
	EvictCheckOps int64
	// MmapScanOps triggers an mmap bitmap scan every this many loads.
	MmapScanOps int64

	// BatchIntents parks small prefetch intents — windows whose uncovered
	// tail is under the batching-hysteresis threshold, which the library
	// otherwise drops — in a per-file aggregator instead. Parked runs keep
	// their requested bits in the shared range tree (deduping follow-up
	// intents against them) and accumulate until a flush sends the whole
	// set to the kernel as ONE vectored readahead_info crossing with one
	// submission plug. Flushes fire when a demand read overlaps a parked
	// run, when the aggregate reaches BatchFlushPages, or on an explicit
	// FlushIntents (the library-level unplug). Requires Visibility.
	BatchIntents bool
	// BatchFlushPages is the aggregate size, in pages, at which the
	// intent aggregator flushes on its own (0 selects 256).
	BatchFlushPages int64

	// Ensemble runs the competing-predictor ensemble per inode: the
	// sequentiality counter, a MITHRIL-style association miner, and a
	// Leap-style majority-trend detector score every access concurrently
	// (shadow mode), and a windowed bandit promotes the winning arm — only
	// the live arm's candidates reach the prefetch path. Requires Predict;
	// off, the per-descriptor counter drives prefetch exactly as before
	// (one nil check on the hot path).
	Ensemble bool
	// EnsembleWindowObs is the bandit window length in observations
	// (0 selects 64).
	EnsembleWindowObs int
	// EnsembleMargin is the score margin a challenger arm must sustain
	// over the live arm (0 selects 0.05).
	EnsembleMargin float64
	// EnsemblePatience is the consecutive winning windows before promotion
	// (0 selects 2).
	EnsemblePatience int
	// EnsembleEpsilon is the per-window exploration probability (default
	// off — shadow mode already scores every arm on every access).
	EnsembleEpsilon float64
	// EnsembleSeed seeds the bandit's exploration PRNG (0 selects 1).
	EnsembleSeed uint64

	// RetryMax is how many times a background prefetch retries a
	// transient device fault before giving up (negative disables
	// retries). Persistent faults are never retried.
	RetryMax int
	// RetryBase is the first retry's backoff; attempt n waits
	// RetryBase<<(n-1) plus jitter.
	RetryBase simtime.Duration
	// RetryJitterFrac stretches each backoff by up to this fraction of
	// deterministic, seeded jitter (decorrelates retries across files
	// without wall-clock randomness).
	RetryJitterFrac float64
	// BreakerThreshold trips a per-file circuit breaker after this many
	// consecutive background prefetch failures. While open, prefetch for
	// the file is dropped — the application degrades to plain demand
	// reads — until BreakerCooloff elapses and a probe prefetch
	// succeeds. <= 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooloff is how long an open breaker suppresses prefetch
	// before half-opening for a single probe.
	BreakerCooloff simtime.Duration
	// FaultSeed seeds the retry jitter hash.
	FaultSeed int64
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.OpenPrefetchBytes <= 0 {
		o.OpenPrefetchBytes = 2 << 20
	}
	if o.MaxPrefetchBytes <= 0 {
		o.MaxPrefetchBytes = 64 << 20
	}
	// The library's watermarks sit above the kernel's (kswapd maintains
	// ~1/8 free): CROSS-LIB must act before the kernel's blind LRU does.
	if o.HighWaterFrac == 0 {
		o.HighWaterFrac = 0.30
	}
	if o.LowWaterFrac == 0 {
		o.LowWaterFrac = 0.15
	}
	if o.InactiveAge <= 0 {
		o.InactiveAge = 100 * simtime.Millisecond
	}
	if o.EvictCheckOps <= 0 {
		o.EvictCheckOps = 32
	}
	if o.MmapScanOps <= 0 {
		o.MmapScanOps = 64
	}
	if o.BatchFlushPages <= 0 {
		o.BatchFlushPages = 256
	}
	if o.RetryMax == 0 {
		o.RetryMax = 2
	}
	if o.RetryMax < 0 {
		o.RetryMax = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 200 * simtime.Microsecond
	}
	if o.RetryJitterFrac == 0 {
		o.RetryJitterFrac = 0.25
	}
	if o.RetryJitterFrac < 0 {
		o.RetryJitterFrac = 0
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 8
	}
	if o.BreakerCooloff <= 0 {
		o.BreakerCooloff = 20 * simtime.Millisecond
	}
	return o
}

// ensembleConfig maps the Options knobs onto the predictor package's
// ensemble configuration, zero fields selecting its defaults.
func (o Options) ensembleConfig() predictor.EnsembleConfig {
	cfg := predictor.DefaultEnsembleConfig()
	if o.EnsembleWindowObs > 0 {
		cfg.WindowObs = o.EnsembleWindowObs
	}
	if o.EnsembleMargin > 0 {
		cfg.Margin = o.EnsembleMargin
	}
	if o.EnsemblePatience > 0 {
		cfg.Patience = o.EnsemblePatience
	}
	if o.EnsembleEpsilon > 0 {
		cfg.Epsilon = o.EnsembleEpsilon
	}
	if o.EnsembleSeed != 0 {
		cfg.Seed = o.EnsembleSeed
	}
	return cfg
}

// Approach names the paper's comparison configurations (Tables 2 and 5).
type Approach int

// Comparison approaches.
const (
	// OSOnly: prefetching fully delegated to kernel readahead (the zero
	// value — a plain unmodified kernel).
	OSOnly Approach = iota
	// AppOnly: application-tailored prefetching with readahead/fadvise;
	// CROSS-LIB inactive. The application logic lives in each workload.
	AppOnly
	// AppOnlyFincore: AppOnly plus a background thread polling fincore
	// for cache state (motivation Figure 2 only).
	AppOnlyFincore
	// CrossVisibility: Table 5 "+cache visibility" — readahead_info with
	// predictor, single-node tree, static kernel limits.
	CrossVisibility
	// CrossVisibilityRangeTree: Table 5 "+range tree".
	CrossVisibilityRangeTree
	// CrossPredict: Table 2 CrossP[+predict].
	CrossPredict
	// CrossPredictOpt: Table 2 CrossP[+predict+opt] — the full system.
	CrossPredictOpt
	// CrossFetchAllOpt: Table 2 CrossP[+fetchall+opt] — idealistic,
	// memory-insensitive whole-file prefetch.
	CrossFetchAllOpt
)

// String names the approach as the paper does.
func (a Approach) String() string {
	switch a {
	case AppOnly:
		return "APPonly"
	case AppOnlyFincore:
		return "APPonly[fincore]"
	case OSOnly:
		return "OSonly"
	case CrossVisibility:
		return "CrossP[+visibility]"
	case CrossVisibilityRangeTree:
		return "CrossP[+visibility+rangetree]"
	case CrossPredict:
		return "CrossP[+predict]"
	case CrossPredictOpt:
		return "CrossP[+predict+opt]"
	case CrossFetchAllOpt:
		return "CrossP[+fetchall+opt]"
	default:
		return "unknown"
	}
}

// UsesLib reports whether the approach activates CROSS-LIB.
func (a Approach) UsesLib() bool { return a >= CrossVisibility }

// Options returns the CROSS-LIB configuration for the approach. Baselines
// return a disabled configuration.
func (a Approach) Options() Options {
	o := Options{}
	switch a {
	case CrossVisibility:
		o = Options{Enabled: true, Visibility: true, Predict: true,
			CoveragePrefetch: true}
	case CrossVisibilityRangeTree:
		o = Options{Enabled: true, Visibility: true, Predict: true,
			CoveragePrefetch: true, RangeTreeSpan: rangetree.DefaultSpan}
	case CrossPredict:
		o = Options{Enabled: true, Visibility: true, Predict: true,
			CoveragePrefetch: true, RangeTreeSpan: rangetree.DefaultSpan}
	case CrossPredictOpt:
		o = Options{Enabled: true, Visibility: true, Predict: true,
			CoveragePrefetch: true, OptLimits: true, AggressiveEvict: true,
			RangeTreeSpan: rangetree.DefaultSpan}
	case CrossFetchAllOpt:
		o = Options{Enabled: true, Visibility: true, FetchAll: true,
			OptLimits: true, RangeTreeSpan: rangetree.DefaultSpan}
	}
	return o.withDefaults()
}
