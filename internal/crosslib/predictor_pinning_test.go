package crosslib

import (
	"testing"

	"repro/internal/predictor"
	"repro/internal/simtime"
)

// TestSteadySkipResetOnReopen PINS current behavior: the sequentiality
// predictor — including the SteadySkip steady-state throttle's counters
// — is per-descriptor state built fresh in wrap() on every Open. Closing
// and reopening the same inode therefore forgets both the saturated
// counter and the skip phase: the reopened descriptor starts at
// NotSequential with zero skipped observations, and its first access is
// examined rather than throttled; the classification restarts at
// HighlyRandom. The shared per-inode state (range tree, ensemble when
// enabled) survives reopen; the throttle does not.
// If predictor state ever moves onto sharedFile, this test must be
// updated deliberately — it exists so that change cannot happen by
// accident.
func TestSteadySkipResetOnReopen(t *testing.T) {
	v := newKernel(1_000_000)
	rt := NewForApproach(v, CrossPredictOpt)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "pin", 64<<20)

	f, err := rt.Open(tl, "pin")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16384)
	for off := int64(0); off < 8<<20; off += 16384 {
		if _, err := f.ReadAt(tl, buf, off); err != nil {
			t.Fatal(err)
		}
	}
	first := f.Predictor()
	if first.State() != predictor.DefinitelySequential {
		t.Fatalf("stream should saturate the counter, state = %v", first.State())
	}
	if first.Skipped() == 0 {
		t.Fatal("saturated sequential stream should engage the SteadySkip throttle")
	}
	if err := f.Close(tl); err != nil {
		t.Fatal(err)
	}

	g, err := rt.Open(tl, "pin")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close(tl)
	p := g.Predictor()
	if p == first {
		t.Fatal("reopen must build a fresh per-descriptor predictor")
	}
	if p.Skipped() != 0 || p.Observes() != 0 {
		t.Fatalf("reopened predictor carries state: skipped=%d observes=%d, want 0/0",
			p.Skipped(), p.Observes())
	}
	if p.State() != predictor.HighlyRandom {
		t.Fatalf("reopened predictor state = %v, want the fresh HighlyRandom", p.State())
	}

	// The first access after reopen must be examined, not throttled —
	// the skip phase did not survive the close.
	if _, err := g.ReadAt(tl, buf, 0); err != nil {
		t.Fatal(err)
	}
	if p.Skipped() != 0 {
		t.Fatalf("first observe after reopen was throttled (skipped=%d)", p.Skipped())
	}
	if p.Observes() != 1 {
		t.Fatalf("first observe after reopen not examined (observes=%d)", p.Observes())
	}
}
