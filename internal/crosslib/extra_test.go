package crosslib

import (
	"testing"

	"repro/internal/simtime"
	"repro/internal/vfs"
)

func TestDropCachesResetsBelief(t *testing.T) {
	v := newKernel(1_000_000)
	rt := NewForApproach(v, CrossPredictOpt)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 16<<20)
	f, _ := rt.Open(tl, "big")
	buf := make([]byte, 1<<20)
	f.ReadAt(tl, buf, 0)
	if f.sf.tree.CachedCount(nil, 0, 256) == 0 {
		t.Fatal("tree should believe pages cached")
	}
	v.Cache().DropAll(tl)
	rt.DropCaches(tl)
	if got := f.sf.tree.CachedCount(nil, 0, 4096); got != 0 {
		t.Fatalf("belief not reset: %d", got)
	}
	// Reads after the drop still work and repopulate.
	if _, err := f.ReadAt(tl, buf, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchDroppedWhenHelpersSaturated(t *testing.T) {
	v := newKernel(1_000_000)
	opt := CrossPredictOpt.Options()
	opt.Workers = 1
	rt := New(v, opt)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 256<<20)

	// Book the lone helper far into the future.
	rt.workers.Run(0, func(wtl *simtime.Timeline) {
		wtl.Advance(simtime.Second)
	})

	f, _ := rt.Open(tl, "big")
	buf := make([]byte, 16384)
	for off := int64(0); off < 4<<20; off += 16384 {
		f.ReadAt(tl, buf, off)
	}
	st := rt.Stats()
	if st.DroppedPrefetch == 0 {
		t.Fatal("saturated helpers should drop prefetch intents")
	}
	// Dropped intents must release their range-tree reservations so a
	// later retry is possible.
	if runs := f.sf.tree.NeedsPrefetch(nil, 2048, 2060); len(runs) == 0 {
		t.Fatal("dropped intent left requested marks behind")
	}
}

func TestBlindModeUsesLegacyReadahead(t *testing.T) {
	v := newKernel(1_000_000)
	// Visibility off: the library falls back to readahead(2).
	rt := New(v, Options{Enabled: true, Predict: true, CoveragePrefetch: true})
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 64<<20)
	f, _ := rt.Open(tl, "big")
	buf := make([]byte, 16384)
	for off := int64(0); off < 4<<20; off += 16384 {
		f.ReadAt(tl, buf, off)
	}
	if v.SyscallCount(vfs.SysReadahead) == 0 {
		t.Fatal("blind mode should issue readahead(2)")
	}
	if v.SyscallCount(vfs.SysReadaheadInfo) != 0 {
		t.Fatal("blind mode must not use readahead_info")
	}
}

func TestMmapScanWindowShrinksOnRandom(t *testing.T) {
	v := newKernel(1_000_000)
	opt := CrossPredictOpt.Options()
	opt.MmapScanOps = 4
	rt := New(v, opt)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 256<<20)
	f, _ := rt.Open(tl, "big")
	m := rt.Mmap(tl, f)
	// Random loads all over the file: no frontier motion after the first
	// scans, so the window should shrink toward its floor.
	offs := []int64{200 << 20, 5 << 20, 120 << 20, 60 << 20, 30 << 20,
		90 << 20, 10 << 20, 180 << 20, 40 << 20, 150 << 20, 70 << 20, 20 << 20}
	for _, off := range offs {
		for i := 0; i < 4; i++ {
			m.Load(tl, off+int64(i)*4096, 4096, nil)
		}
	}
	m.mu.Lock()
	window := m.window
	m.mu.Unlock()
	if window > 64 {
		t.Fatalf("random mmap loads should shrink the window, got %d blocks", window)
	}
}

func TestMemoryBudgetPagesRespected(t *testing.T) {
	v := newKernel(100_000) // 400MB system cache
	opt := CrossPredictOpt.Options()
	opt.MemoryBudgetPages = 1000 // 4MB process budget
	opt.RangeTreeSpan = 256      // 1MB eviction granularity
	opt.InactiveAge = 500 * simtime.Microsecond
	opt.EvictCheckOps = 8
	rt := New(v, opt)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "big", 256<<20)
	f, _ := rt.Open(tl, "big")
	buf := make([]byte, 16384)
	for off := int64(0); off < 32<<20; off += 16384 {
		f.ReadAt(tl, buf, off)
	}
	// Though the system cache could hold the whole 32MB stream, the
	// library's aggressive eviction works against its own 4MB budget:
	// cold ranges behind the stream get DONTNEEDed, so residency stays
	// near the budget instead of ballooning to the full stream.
	if used := v.Cache().Used(); used > 4000 {
		t.Fatalf("process budget ignored: %d pages resident", used)
	}
	if rt.Stats().EvictedPages == 0 {
		t.Fatal("budget-driven eviction never ran")
	}
}
