package crosslib

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/fs"
	"repro/internal/pagecache"
	"repro/internal/simtime"
	"repro/internal/vfs"
)

// newOverloadKernel builds a kernel with the brownout controller on and
// a congestion limit small enough that any outstanding device work
// raises the pressure level.
func newOverloadKernel(capacity int64) *vfs.VFS {
	costs := simtime.DefaultCosts()
	dev := blockdev.New(blockdev.NVMeConfig())
	fsys := fs.New(fs.LayoutExtent, 4096, costs)
	cache := pagecache.New(pagecache.Config{BlockSize: 4096, CapacityPages: capacity, Costs: costs}, nil)
	cfg := vfs.DefaultConfig()
	cfg.AllowLimitOverride = true
	cfg.Brownout = true
	cfg.CongestionLimit = simtime.Microsecond
	return vfs.New(cfg, fsys, dev, cache)
}

// TestRingCloseReapRace: a Close racing an in-flight Submit must not
// strand parked CQEs or deadlock a reaper. Before the fix, Close's
// broadcast woke a blocked reaper immediately; if a Submit had already
// taken its staged batch but not yet appended the completions, the
// reaper returned empty and the CQEs were appended to a queue nobody
// would ever drain. Now every successfully prepped op is either reaped
// or counted discarded, exactly once.
func TestRingCloseReapRace(t *testing.T) {
	v := newKernel(1 << 20)
	rt := NewForApproach(v, CrossPredictOpt)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "race", 16<<20)
	f, err := rt.Open(tl, "race")
	if err != nil {
		t.Fatal(err)
	}

	const iters = 100
	for it := 0; it < iters; it++ {
		ring := rt.NewRing(0, 64)
		prepped := int64(0)
		bufs := make([][]byte, 16)
		for i := range bufs {
			bufs[i] = make([]byte, 128<<10)
			if ring.PrepRead(f, bufs[i], int64(i)*(128<<10), uint64(i)) == nil {
				prepped++
			}
		}

		var reaped atomic.Int64
		started := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			rtl := simtime.NewTimeline(0)
			for {
				cqs := ring.Reap(rtl, 1)
				if len(cqs) == 0 {
					return
				}
				reaped.Add(int64(len(cqs)))
			}
		}()
		go func() {
			defer wg.Done()
			stl := simtime.NewTimeline(0)
			close(started)
			ring.Submit(stl)
		}()
		// Close as the Submit crossing is (most likely) mid-flight: the
		// staged batch is taken but its completions not yet parked.
		<-started
		ring.Close()
		wg.Wait()

		// No rescue drain: the reap-until-empty consumer above is the
		// whole contract. Anything it did not see must be in Discarded.
		st := ring.Stats()
		if got := reaped.Load() + st.Discarded; got != prepped {
			t.Fatalf("iter %d: reaped %d + discarded %d = %d, want %d prepped (leaked CQEs)",
				it, reaped.Load(), st.Discarded, got, prepped)
		}
	}
}

// TestBreakerProbeSurvivesShed: a half-open breaker's probe prefetch
// that the kernel SHEDS (brownout level >= 1) must not consume the
// probe slot — the breaker state stays exactly as it was, so the probe
// re-arms as soon as pressure clears. Before the fix, Submit fed every
// non-nil CQE error to noteFault, so a shed re-armed the cooloff as if
// the probe had failed, keeping prefetch off long after the overload.
func TestBreakerProbeSurvivesShed(t *testing.T) {
	v := newOverloadKernel(1 << 20)
	rt := NewForApproach(v, CrossPredictOpt)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "shed", 64<<20)
	f, err := rt.Open(tl, "shed")
	if err != nil {
		t.Fatal(err)
	}
	ring := rt.NewRing(0, 64)

	// Pile up device backlog without waiting on it: a large uncached
	// ring read whose CQE we deliberately do not reap yet. From this
	// timeline's now, the device is busy far past 4x the congestion
	// limit, so the next crossing computes BrownoutClamped.
	big := make([]byte, 4<<20)
	if err := ring.PrepRead(f, big, 0, 1); err != nil {
		t.Fatal(err)
	}
	ring.Submit(tl)
	if got := v.Device().Backlog(tl.Now()); got <= 4*simtime.Microsecond {
		t.Fatalf("backlog %v too small to trigger brownout", got)
	}

	// Force the breaker half-open: open, with the cooloff already
	// elapsed, so allow() grants exactly one probe.
	now := tl.Now()
	f.sf.brk.mu.Lock()
	f.sf.brk.open = true
	f.sf.brk.fails = rt.opt.BreakerThreshold
	f.sf.brk.reopenAt = now
	f.sf.brk.mu.Unlock()

	// The probe: a prefetch intent for an uncached range. The kernel
	// sheds it (brownout >= prefetch-off) with ErrShed.
	if err := ring.PrepPrefetch(f, 32<<20, 1<<20, 2); err != nil {
		t.Fatal(err)
	}
	ring.Submit(tl)
	var shedCQE bool
	for _, cq := range ring.Reap(tl, 0) {
		if cq.User != 2 {
			continue
		}
		if !errors.Is(cq.Err, vfs.ErrShed) {
			t.Fatalf("probe CQE error = %v, want vfs.ErrShed", cq.Err)
		}
		shedCQE = true
	}
	if !shedCQE {
		t.Fatal("probe prefetch CQE not delivered")
	}

	f.sf.brk.mu.Lock()
	open, fails, reopenAt := f.sf.brk.open, f.sf.brk.fails, f.sf.brk.reopenAt
	f.sf.brk.mu.Unlock()
	if !open || fails != rt.opt.BreakerThreshold || reopenAt != now {
		t.Fatalf("shed consumed the probe slot: open=%v fails=%d reopenAt=%v (want open=true fails=%d reopenAt=%v)",
			open, fails, reopenAt, rt.opt.BreakerThreshold, now)
	}
	if got := rt.Stats().BreakerTrips; got != 0 {
		t.Fatalf("shed counted as breaker trip: %d", got)
	}
}

// TestTenantStressReconciliation: eight concurrent submitters — one
// over-budget antagonist scanning a file larger than the cache, seven
// budgeted tenants rereading their own files — must leave the tenant
// ledgers exactly consistent at quiescence, at several GOMAXPROCS
// settings: per tenant inserted − evicted == resident, and the tenant
// residencies partition the global page count with no remainder.
func TestTenantStressReconciliation(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{2, 4, 16} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			runtime.GOMAXPROCS(procs)
			const (
				capacity = 2048 // pages (8MB)
				nTenants = 8
				soft     = int64(128)
				hard     = int64(256)
				chunk    = 64 << 10
			)
			v := newKernel(capacity)
			rt := NewForApproach(v, CrossPredictOpt)
			setup := simtime.NewTimeline(0)
			// Tenant 0 is the antagonist: a 16MB file (2x the cache),
			// scanned twice, no budget. Tenants 1..7 each reread a 4MB
			// file three times under a 256-page hard cap.
			v.FS().CreateSynthetic(setup, "antagonist", 16<<20)
			for i := 1; i < nTenants; i++ {
				v.FS().CreateSynthetic(setup, fmt.Sprintf("victim%d", i), 4<<20)
				v.Cache().SetTenantBudget(i, soft, hard)
			}

			var wg sync.WaitGroup
			errs := make(chan error, nTenants)
			run := func(tenant int, name string, size int64, passes int) {
				defer wg.Done()
				tl := simtime.NewTimeline(0)
				f, err := rt.Open(tl, name)
				if err != nil {
					errs <- err
					return
				}
				defer f.Close(tl)
				ring := rt.NewRing(tenant, 64)
				defer ring.Close()
				buf := make([]byte, chunk)
				for pass := 0; pass < passes; pass++ {
					for off := int64(0); off < size; off += chunk {
						if err := ring.PrepRead(f, buf, off, uint64(off)); err != nil {
							errs <- err
							return
						}
						if ring.Submit(tl) != 1 {
							errs <- fmt.Errorf("tenant %d: submit consumed != 1", tenant)
							return
						}
						for _, cq := range ring.Reap(tl, 1) {
							if cq.Err != nil {
								errs <- fmt.Errorf("tenant %d off %d: %w", tenant, cq.User, cq.Err)
								return
							}
						}
					}
				}
			}
			wg.Add(nTenants)
			go run(0, "antagonist", 16<<20, 2)
			for i := 1; i < nTenants; i++ {
				go run(i, fmt.Sprintf("victim%d", i), 4<<20, 3)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// Exact reconciliation at quiescence.
			var sum int64
			for _, ts := range v.Cache().TenantStats() {
				if ts.Inserted-ts.Evicted != ts.Resident {
					t.Errorf("tenant %d: inserted %d - evicted %d != resident %d",
						ts.ID, ts.Inserted, ts.Evicted, ts.Resident)
				}
				if ts.Resident < 0 {
					t.Errorf("tenant %d: negative residency %d", ts.ID, ts.Resident)
				}
				if ts.ID != 0 && ts.HardBudget > 0 && ts.Resident > ts.HardBudget {
					// Hard reclaim runs on the inserting thread, so at
					// quiescence a budgeted tenant sits at or under its cap.
					t.Errorf("tenant %d: resident %d over hard budget %d",
						ts.ID, ts.Resident, ts.HardBudget)
				}
				sum += ts.Resident
			}
			if used := v.Cache().Used(); sum != used {
				t.Errorf("tenant residencies sum to %d, cache used %d", sum, used)
			}
			st := v.Cache().Stats()
			if st.TenantReclaims == 0 {
				t.Error("no tenant-targeted reclaims despite over-budget rereads")
			}
			if st.Evictions == 0 {
				t.Error("antagonist scan caused no global evictions")
			}
		})
	}
}

// TestDeadlineShedAndMiss: the library sheds an unmeetable prefetch
// deadline locally with ErrShed, and an expired read completes with
// ErrDeadlineExceeded — the two refusal modes stay distinct.
func TestDeadlineShedAndMiss(t *testing.T) {
	v := newKernel(1 << 20)
	rt := NewForApproach(v, CrossPredictOpt)
	tl := simtime.NewTimeline(0)
	v.FS().CreateSynthetic(tl, "dl", 16<<20)
	f, err := rt.Open(tl, "dl")
	if err != nil {
		t.Fatal(err)
	}
	ring := rt.NewRing(0, 64)
	tl.Advance(simtime.Millisecond)

	past := tl.Now().Add(-simtime.Microsecond)
	if err := ring.PrepPrefetchDeadline(f, 0, 1<<20, 1, past); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := ring.PrepReadDeadline(f, buf, 0, 2, past); err != nil {
		t.Fatal(err)
	}
	ring.Submit(tl)
	got := map[uint64]error{}
	for _, cq := range ring.Reap(tl, 0) {
		got[cq.User] = cq.Err
	}
	if !errors.Is(got[1], vfs.ErrShed) {
		t.Fatalf("expired prefetch error = %v, want vfs.ErrShed", got[1])
	}
	if !errors.Is(got[2], vfs.ErrDeadlineExceeded) {
		t.Fatalf("expired read error = %v, want vfs.ErrDeadlineExceeded", got[2])
	}
}
