// Package fs implements the simulated file systems beneath the page cache.
//
// Two layout policies are provided, matching the paper's evaluation targets:
//
//   - LayoutExtent models ext4: files get contiguous physical extents when
//     possible, metadata updates pay a journal transaction, and overwrites
//     are in place.
//   - LayoutLog models F2FS: every block write is appended at the log head,
//     so random writes become physically sequential while overwritten
//     blocks are remapped.
//
// The file system stores real data for written blocks (the LSM store and
// compression workloads depend on content round-tripping) but keeps
// never-written blocks of synthetic files unmaterialized, so experiments
// can use multi-gigabyte logical files without the host RAM to match.
// Timing is charged by the callers (the VFS layer) using the physical-run
// mapping this package exposes; only metadata operations charge time here,
// via the journal ledger.
package fs

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/simtime"
)

// Layout selects the block allocation policy.
type Layout int

const (
	// LayoutExtent is the ext4-like in-place, extent-based layout.
	LayoutExtent Layout = iota
	// LayoutLog is the F2FS-like log-structured layout.
	LayoutLog
)

// String names the layout.
func (l Layout) String() string {
	if l == LayoutLog {
		return "f2fs"
	}
	return "ext4"
}

const unmapped = int64(-1)

// dataShards spreads block contents over independently locked maps.
const dataShards = 32

type dataShard struct {
	mu     sync.RWMutex
	blocks map[int64][]byte
}

// FS is a simulated file system instance on one device.
type FS struct {
	layout    Layout
	blockSize int64

	mu      sync.RWMutex
	files   map[string]*Inode
	byID    map[int64]*Inode
	nextIno int64

	allocMu  sync.Mutex
	nextPhys int64 // bump allocator / log head

	journal *simtime.Ledger
	costs   simtime.Costs

	data [dataShards]dataShard
}

// New returns an empty file system with the given layout and block size.
func New(layout Layout, blockSize int64, costs simtime.Costs) *FS {
	if blockSize <= 0 {
		blockSize = 4096
	}
	f := &FS{
		layout:    layout,
		blockSize: blockSize,
		files:     make(map[string]*Inode),
		byID:      make(map[int64]*Inode),
		journal:   simtime.NewLedger(layout.String() + ".journal"),
		costs:     costs,
	}
	for i := range f.data {
		f.data[i].blocks = make(map[int64][]byte)
	}
	return f
}

// Layout reports the allocation policy.
func (f *FS) Layout() Layout { return f.layout }

// BlockSize reports the file system block size.
func (f *FS) BlockSize() int64 { return f.blockSize }

// Inode is a simulated file.
type Inode struct {
	fs   *FS
	id   int64
	name string

	mu   sync.RWMutex
	size int64
	phys []int64 // logical block index -> physical block, unmapped if absent
}

// ID reports the inode number.
func (ino *Inode) ID() int64 { return ino.id }

// Name reports the file's path.
func (ino *Inode) Name() string { return ino.name }

// Size reports the file size in bytes.
func (ino *Inode) Size() int64 {
	ino.mu.RLock()
	defer ino.mu.RUnlock()
	return ino.size
}

// Blocks reports the file size in whole blocks (rounded up).
func (ino *Inode) Blocks() int64 {
	return (ino.Size() + ino.fs.blockSize - 1) / ino.fs.blockSize
}

// metadataOp charges a journal transaction for metadata-updating layouts.
// F2FS-like layouts log metadata with data and pay roughly half the cost.
func (f *FS) metadataOp(tl *simtime.Timeline) {
	if tl == nil {
		return
	}
	cost := f.costs.JournalOp
	if f.layout == LayoutLog {
		cost /= 2
	}
	f.journal.Use(tl, cost)
}

// Create creates an empty file, charging a metadata transaction.
func (f *FS) Create(tl *simtime.Timeline, name string) (*Inode, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.files[name]; ok {
		return nil, fmt.Errorf("fs: create %s: file exists", name)
	}
	f.nextIno++
	ino := &Inode{fs: f, id: f.nextIno, name: name}
	f.files[name] = ino
	f.byID[ino.id] = ino
	f.metadataOp(tl)
	return ino, nil
}

// InodeByID looks up an inode by number, or nil for a deleted/unknown
// file. The page cache's writeback hook uses it to map a dirty run's
// logical blocks to device offsets.
func (f *FS) InodeByID(id int64) *Inode {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.byID[id]
}

// CreateSynthetic creates a file of the given logical size whose blocks are
// fully mapped (contiguous under LayoutExtent) but hold no materialized
// data: reads return deterministic filler. This is how microbenchmarks get
// paper-scale (hundreds of GB logical) files without host RAM.
func (f *FS) CreateSynthetic(tl *simtime.Timeline, name string, size int64) (*Inode, error) {
	ino, err := f.Create(tl, name)
	if err != nil {
		return nil, err
	}
	nblocks := (size + f.blockSize - 1) / f.blockSize
	start := f.allocRun(nblocks)
	ino.mu.Lock()
	ino.size = size
	ino.phys = make([]int64, nblocks)
	for i := range ino.phys {
		ino.phys[i] = start + int64(i)
	}
	ino.mu.Unlock()
	return ino, nil
}

// Open looks up an existing file.
func (f *FS) Open(name string) (*Inode, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	ino, ok := f.files[name]
	if !ok {
		return nil, fmt.Errorf("fs: open %s: no such file", name)
	}
	return ino, nil
}

// Remove deletes a file and discards its materialized data.
func (f *FS) Remove(tl *simtime.Timeline, name string) error {
	f.mu.Lock()
	ino, ok := f.files[name]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("fs: remove %s: no such file", name)
	}
	delete(f.files, name)
	delete(f.byID, ino.id)
	f.mu.Unlock()

	ino.mu.Lock()
	phys := ino.phys
	ino.phys = nil
	ino.size = 0
	ino.mu.Unlock()
	for _, p := range phys {
		if p != unmapped {
			f.dropBlock(p)
		}
	}
	f.metadataOp(tl)
	return nil
}

// List returns all file names, sorted.
func (f *FS) List() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	names := make([]string, 0, len(f.files))
	for n := range f.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FileCount reports the number of files.
func (f *FS) FileCount() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.files)
}

// allocRun reserves n physical blocks. Under both layouts the bump
// allocator yields contiguous runs; the layouts differ in *when* they
// allocate (extent: once per file region, in place thereafter; log: on
// every write).
func (f *FS) allocRun(n int64) int64 {
	f.allocMu.Lock()
	defer f.allocMu.Unlock()
	start := f.nextPhys
	f.nextPhys += n
	return start
}

func (f *FS) shard(phys int64) *dataShard {
	return &f.data[phys%dataShards]
}

func (f *FS) dropBlock(phys int64) {
	s := f.shard(phys)
	s.mu.Lock()
	delete(s.blocks, phys)
	s.mu.Unlock()
}

// PhysRun is a contiguous run of physical blocks backing a contiguous run
// of logical blocks.
type PhysRun struct {
	Logical int64 // first logical block
	Phys    int64 // first physical block
	Count   int64
}

// MapRange returns the physical runs backing logical blocks [lo, hi),
// coalescing physically contiguous blocks. Unmapped (hole) blocks are
// omitted; callers treat them as zero-fill without device I/O.
func (ino *Inode) MapRange(lo, hi int64) []PhysRun {
	ino.mu.RLock()
	defer ino.mu.RUnlock()
	if lo < 0 {
		lo = 0
	}
	if max := int64(len(ino.phys)); hi > max {
		hi = max
	}
	var runs []PhysRun
	for i := lo; i < hi; {
		p := ino.phys[i]
		if p == unmapped {
			i++
			continue
		}
		run := PhysRun{Logical: i, Phys: p, Count: 1}
		for i+run.Count < hi && ino.phys[i+run.Count] == p+run.Count {
			run.Count++
		}
		runs = append(runs, run)
		i += run.Count
	}
	return runs
}

// ensureBlocks grows the mapping slice (not the allocation) to cover block
// index hi-1. Caller holds ino.mu.
func (ino *Inode) ensureBlocks(hi int64) {
	for int64(len(ino.phys)) < hi {
		ino.phys = append(ino.phys, unmapped)
	}
}

// WriteAt writes data at byte offset off, allocating blocks according to
// the layout policy and extending the file size as needed. It returns the
// number of newly allocated blocks (callers charge metadata time when > 0).
func (ino *Inode) WriteAt(data []byte, off int64) (newBlocks int64) {
	if len(data) == 0 {
		return 0
	}
	bs := ino.fs.blockSize
	ino.mu.Lock()
	defer ino.mu.Unlock()

	end := off + int64(len(data))
	ino.ensureBlocks((end + bs - 1) / bs)
	if end > ino.size {
		ino.size = end
	}

	pos := off
	for pos < end {
		blk := pos / bs
		blkOff := pos % bs
		n := bs - blkOff
		if rem := end - pos; rem < n {
			n = rem
		}
		phys := ino.phys[blk]
		switch {
		case phys == unmapped:
			phys = ino.fs.allocRun(1)
			ino.phys[blk] = phys
			newBlocks++
		case ino.fs.layout == LayoutLog:
			// Log-structured: overwrites remap to the log head.
			old := phys
			phys = ino.fs.allocRun(1)
			// Carry over the rest of the block on partial overwrite.
			if blkOff != 0 || n != bs {
				ino.fs.copyBlock(old, phys)
			}
			ino.fs.dropBlock(old)
			ino.phys[blk] = phys
			newBlocks++
		}
		ino.fs.writeBlockData(phys, blkOff, data[pos-off:pos-off+n])
		pos += n
	}
	return newBlocks
}

// ReadAt fills dst with file content starting at byte offset off, stopping
// at EOF. Unmaterialized blocks yield deterministic filler derived from
// the physical block number. It returns the number of bytes read.
func (ino *Inode) ReadAt(dst []byte, off int64) int {
	bs := ino.fs.blockSize
	ino.mu.RLock()
	size := ino.size
	ino.mu.RUnlock()
	if off >= size {
		return 0
	}
	end := off + int64(len(dst))
	if end > size {
		end = size
	}
	pos := off
	for pos < end {
		blk := pos / bs
		blkOff := pos % bs
		n := bs - blkOff
		if rem := end - pos; rem < n {
			n = rem
		}
		ino.mu.RLock()
		phys := unmapped
		if blk < int64(len(ino.phys)) {
			phys = ino.phys[blk]
		}
		ino.mu.RUnlock()
		ino.fs.readBlockData(phys, blkOff, dst[pos-off:pos-off+n])
		pos += n
	}
	return int(end - off)
}

// Truncate sets the file size, discarding mappings beyond it.
func (ino *Inode) Truncate(tl *simtime.Timeline, size int64) {
	bs := ino.fs.blockSize
	ino.mu.Lock()
	keep := (size + bs - 1) / bs
	var dropped []int64
	if keep < int64(len(ino.phys)) {
		for _, p := range ino.phys[keep:] {
			if p != unmapped {
				dropped = append(dropped, p)
			}
		}
		ino.phys = ino.phys[:keep]
	}
	ino.size = size
	ino.mu.Unlock()
	for _, p := range dropped {
		ino.fs.dropBlock(p)
	}
	ino.fs.metadataOp(tl)
}

func (f *FS) writeBlockData(phys, off int64, data []byte) {
	s := f.shard(phys)
	s.mu.Lock()
	blk := s.blocks[phys]
	if blk == nil {
		blk = make([]byte, f.blockSize)
		fillSynthetic(blk, phys)
		s.blocks[phys] = blk
	}
	copy(blk[off:], data)
	s.mu.Unlock()
}

func (f *FS) copyBlock(from, to int64) {
	s := f.shard(from)
	s.mu.RLock()
	src := s.blocks[from]
	s.mu.RUnlock()
	dst := make([]byte, f.blockSize)
	if src != nil {
		copy(dst, src)
	} else {
		fillSynthetic(dst, from)
	}
	d := f.shard(to)
	d.mu.Lock()
	d.blocks[to] = dst
	d.mu.Unlock()
}

func (f *FS) readBlockData(phys, off int64, dst []byte) {
	if phys == unmapped {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	s := f.shard(phys)
	s.mu.RLock()
	blk := s.blocks[phys]
	s.mu.RUnlock()
	if blk == nil {
		fillSyntheticAt(dst, phys, off)
		return
	}
	copy(dst, blk[off:])
}

// fillSynthetic writes the deterministic filler pattern for an
// unmaterialized block.
func fillSynthetic(dst []byte, phys int64) { fillSyntheticAt(dst, phys, 0) }

// fillSyntheticAt generates byte pos as byte((x >> (8*(pos%8))) ^ pos).
// It runs on every copy-out of never-written file content, so the bulk is
// done a word at a time: for pos aligned to 8, the eight pattern bytes are
// byte(x>>8j) ^ (byte(pos)+j) with no per-lane carry, i.e. one 64-bit
// xor/add against precomputable lane constants.
func fillSyntheticAt(dst []byte, phys, off int64) {
	x := uint64(phys)*0x9e3779b97f4a7c15 + 1
	pos := uint64(off)
	i := 0
	for ; i < len(dst) && pos%8 != 0; i++ {
		dst[i] = byte((x >> (8 * (pos % 8))) ^ pos)
		pos++
	}
	const lanes = 0x0101010101010101
	const laneIdx = 0x0706050403020100
	for ; i+8 <= len(dst); i, pos = i+8, pos+8 {
		binary.LittleEndian.PutUint64(dst[i:], x^(laneIdx+lanes*uint64(byte(pos))))
	}
	for ; i < len(dst); i++ {
		dst[i] = byte((x >> (8 * (pos % 8))) ^ pos)
		pos++
	}
}

// JournalStats exposes journal contention counters (metadata-heavy
// workloads like the mongodb filebench profile stress this).
func (f *FS) JournalStats() simtime.LedgerStats { return f.journal.Stats() }
