package fs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func newTestFS(layout Layout) *FS {
	return New(layout, 4096, simtime.DefaultCosts())
}

func TestCreateOpenRemove(t *testing.T) {
	f := newTestFS(LayoutExtent)
	tl := simtime.NewTimeline(0)
	ino, err := f.Create(tl, "a")
	if err != nil {
		t.Fatal(err)
	}
	if ino.Name() != "a" || ino.ID() == 0 {
		t.Fatalf("bad inode %v %v", ino.Name(), ino.ID())
	}
	if _, err := f.Create(tl, "a"); err == nil {
		t.Fatal("duplicate create should fail")
	}
	got, err := f.Open("a")
	if err != nil || got != ino {
		t.Fatalf("open returned %v, %v", got, err)
	}
	if err := f.Remove(tl, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Open("a"); err == nil {
		t.Fatal("open after remove should fail")
	}
	if err := f.Remove(tl, "a"); err == nil {
		t.Fatal("double remove should fail")
	}
	if tl.Elapsed() == 0 {
		t.Fatal("metadata ops should charge time")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, layout := range []Layout{LayoutExtent, LayoutLog} {
		t.Run(layout.String(), func(t *testing.T) {
			f := newTestFS(layout)
			ino, _ := f.Create(nil, "f")
			data := make([]byte, 10000)
			rand.New(rand.NewSource(1)).Read(data)
			ino.WriteAt(data, 100)
			if ino.Size() != 10100 {
				t.Fatalf("size = %d, want 10100", ino.Size())
			}
			got := make([]byte, 10000)
			if n := ino.ReadAt(got, 100); n != 10000 {
				t.Fatalf("read %d bytes", n)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("data mismatch")
			}
		})
	}
}

func TestOverwriteInPlaceVsRemap(t *testing.T) {
	ext := newTestFS(LayoutExtent)
	log := newTestFS(LayoutLog)
	for _, f := range []*FS{ext, log} {
		ino, _ := f.Create(nil, "f")
		buf := bytes.Repeat([]byte{1}, 4096)
		ino.WriteAt(buf, 0)
		ino.WriteAt(bytes.Repeat([]byte{2}, 4096), 0)
		got := make([]byte, 4096)
		ino.ReadAt(got, 0)
		if got[0] != 2 || got[4095] != 2 {
			t.Fatalf("%s: overwrite lost", f.Layout())
		}
	}
	// Extent: the overwrite stayed in place; Log: it moved.
	eIno, _ := ext.Open("f")
	lIno, _ := log.Open("f")
	if eIno.MapRange(0, 1)[0].Phys != 0 {
		t.Fatal("extent overwrite should stay at phys 0")
	}
	if lIno.MapRange(0, 1)[0].Phys == 0 {
		t.Fatal("log overwrite should remap away from phys 0")
	}
}

func TestLogLayoutSequentializesRandomWrites(t *testing.T) {
	f := newTestFS(LayoutLog)
	ino, _ := f.Create(nil, "f")
	buf := make([]byte, 4096)
	// Write blocks in random logical order.
	order := []int64{7, 2, 9, 0, 5}
	for _, blk := range order {
		ino.WriteAt(buf, blk*4096)
	}
	// Physical placement follows write order, not logical order.
	for i, blk := range order {
		runs := ino.MapRange(blk, blk+1)
		if len(runs) != 1 || runs[0].Phys != int64(i) {
			t.Fatalf("block %d mapped to %v, want phys %d", blk, runs, i)
		}
	}
}

func TestExtentContiguity(t *testing.T) {
	f := newTestFS(LayoutExtent)
	ino, _ := f.Create(nil, "f")
	buf := make([]byte, 10*4096)
	ino.WriteAt(buf, 0)
	runs := ino.MapRange(0, 10)
	if len(runs) != 1 || runs[0].Count != 10 {
		t.Fatalf("sequential write should be one run, got %v", runs)
	}
}

func TestMapRangeWithHoles(t *testing.T) {
	f := newTestFS(LayoutExtent)
	ino, _ := f.Create(nil, "f")
	buf := make([]byte, 4096)
	ino.WriteAt(buf, 0)
	ino.WriteAt(buf, 5*4096) // blocks 1-4 are holes
	runs := ino.MapRange(0, 6)
	if len(runs) != 2 {
		t.Fatalf("want 2 runs, got %v", runs)
	}
	if runs[0].Logical != 0 || runs[1].Logical != 5 {
		t.Fatalf("run logicals wrong: %v", runs)
	}
	// Hole reads return zeros.
	got := make([]byte, 4096)
	ino.ReadAt(got, 2*4096)
	for _, b := range got {
		if b != 0 {
			t.Fatal("hole read not zero")
		}
	}
}

func TestSyntheticFile(t *testing.T) {
	f := newTestFS(LayoutExtent)
	ino, err := f.CreateSynthetic(nil, "big", 1<<30) // 1 GB logical
	if err != nil {
		t.Fatal(err)
	}
	if ino.Size() != 1<<30 {
		t.Fatalf("size = %d", ino.Size())
	}
	if ino.Blocks() != (1<<30)/4096 {
		t.Fatalf("blocks = %d", ino.Blocks())
	}
	runs := ino.MapRange(0, ino.Blocks())
	if len(runs) != 1 {
		t.Fatalf("synthetic file should be fully contiguous, got %d runs", len(runs))
	}
	// Reads are deterministic and repeatable.
	a := make([]byte, 8192)
	b := make([]byte, 8192)
	ino.ReadAt(a, 123456)
	ino.ReadAt(b, 123456)
	if !bytes.Equal(a, b) {
		t.Fatal("synthetic reads not deterministic")
	}
	// Writing over synthetic content preserves surrounding filler.
	before := make([]byte, 4096)
	ino.ReadAt(before, 0)
	ino.WriteAt([]byte("hello"), 10)
	after := make([]byte, 4096)
	ino.ReadAt(after, 0)
	if string(after[10:15]) != "hello" {
		t.Fatal("overwrite lost")
	}
	if !bytes.Equal(after[:10], before[:10]) || !bytes.Equal(after[15:], before[15:]) {
		t.Fatal("overwrite clobbered surrounding synthetic content")
	}
}

func TestReadAtEOF(t *testing.T) {
	f := newTestFS(LayoutExtent)
	ino, _ := f.Create(nil, "f")
	ino.WriteAt([]byte("abc"), 0)
	buf := make([]byte, 10)
	if n := ino.ReadAt(buf, 0); n != 3 {
		t.Fatalf("read %d, want 3", n)
	}
	if n := ino.ReadAt(buf, 3); n != 0 {
		t.Fatalf("read at EOF = %d, want 0", n)
	}
	if n := ino.ReadAt(buf, 100); n != 0 {
		t.Fatalf("read beyond EOF = %d, want 0", n)
	}
}

func TestTruncate(t *testing.T) {
	f := newTestFS(LayoutExtent)
	ino, _ := f.Create(nil, "f")
	ino.WriteAt(make([]byte, 10*4096), 0)
	ino.Truncate(nil, 4096)
	if ino.Size() != 4096 {
		t.Fatalf("size = %d", ino.Size())
	}
	if runs := ino.MapRange(0, 100); len(runs) != 1 || runs[0].Count != 1 {
		t.Fatalf("mapping after truncate = %v", runs)
	}
}

func TestListAndCount(t *testing.T) {
	f := newTestFS(LayoutExtent)
	for _, n := range []string{"c", "a", "b"} {
		if _, err := f.Create(nil, n); err != nil {
			t.Fatal(err)
		}
	}
	got := f.List()
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("List = %v", got)
	}
	if f.FileCount() != 3 {
		t.Fatalf("FileCount = %d", f.FileCount())
	}
}

func TestJournalChargesMore(t *testing.T) {
	ext := newTestFS(LayoutExtent)
	log := newTestFS(LayoutLog)
	tlE := simtime.NewTimeline(0)
	tlL := simtime.NewTimeline(0)
	for i := 0; i < 10; i++ {
		_, _ = ext.Create(tlE, string(rune('a'+i)))
		_, _ = log.Create(tlL, string(rune('a'+i)))
	}
	if tlE.Elapsed() <= tlL.Elapsed() {
		t.Fatalf("ext4 metadata should cost more: ext=%v log=%v", tlE.Elapsed(), tlL.Elapsed())
	}
}

// Property: WriteAt/ReadAt round-trips at arbitrary offsets and lengths
// under both layouts.
func TestWriteReadProperty(t *testing.T) {
	for _, layout := range []Layout{LayoutExtent, LayoutLog} {
		f := newTestFS(layout)
		ino, _ := f.Create(nil, "p")
		check := func(off uint16, size uint8, seed int64) bool {
			data := make([]byte, int(size)+1)
			rand.New(rand.NewSource(seed)).Read(data)
			ino.WriteAt(data, int64(off))
			got := make([]byte, len(data))
			n := ino.ReadAt(got, int64(off))
			return n == len(data) && bytes.Equal(got, data)
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%s: %v", layout, err)
		}
	}
}
