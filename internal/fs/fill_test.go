package fs

import (
	"bytes"
	"math/rand"
	"testing"
)

// fillReference is the original byte-at-a-time definition of the
// deterministic filler pattern. The word-level fillSyntheticAt must match
// it bit for bit — synthetic file content is ground truth for the chaos
// harness and the same-seed determinism tests.
func fillReference(dst []byte, phys, off int64) {
	x := uint64(phys)*0x9e3779b97f4a7c15 + 1
	for i := range dst {
		pos := uint64(off) + uint64(i)
		dst[i] = byte((x >> (8 * (pos % 8))) ^ pos)
	}
}

func TestFillSyntheticAtMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, phys := range []int64{0, 1, 7, 255, 1 << 20, 1<<40 + 12345} {
		for off := int64(0); off < 20; off++ {
			for size := 0; size < 70; size++ {
				want := make([]byte, size)
				got := make([]byte, size)
				fillReference(want, phys, off)
				fillSyntheticAt(got, phys, off)
				if !bytes.Equal(got, want) {
					t.Fatalf("fill(phys=%d off=%d size=%d) diverged from reference", phys, off, size)
				}
			}
		}
	}
	for trial := 0; trial < 200; trial++ {
		phys := rng.Int63()
		off := rng.Int63n(1 << 30)
		size := rng.Intn(9000)
		want := make([]byte, size)
		got := make([]byte, size)
		fillReference(want, phys, off)
		fillSyntheticAt(got, phys, off)
		if !bytes.Equal(got, want) {
			t.Fatalf("fill(phys=%d off=%d size=%d) diverged from reference", phys, off, size)
		}
	}
}
