package crossprefetch_test

import (
	"bytes"
	"math/rand"
	"testing"

	crossprefetch "repro"
	"repro/internal/blockdev"
	"repro/internal/telemetry"
)

func TestZeroValueConfig(t *testing.T) {
	sys := crossprefetch.NewSystem(crossprefetch.Config{})
	cfg := sys.Config()
	if cfg.MemoryBytes != 1<<30 || cfg.BlockSize != 4096 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.KernelRAMaxBytes != 128<<10 {
		t.Fatalf("kernel RA default = %d", cfg.KernelRAMaxBytes)
	}
	if sys.Approach() != crossprefetch.OSOnly {
		t.Fatalf("default approach = %v", sys.Approach())
	}
}

func TestEndToEndReadWrite(t *testing.T) {
	sys := crossprefetch.NewSystem(crossprefetch.Config{
		MemoryBytes: 64 << 20,
		Approach:    crossprefetch.CrossPredictOpt,
	})
	tl := sys.Timeline()
	f, err := sys.Create(tl, "file")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("crossprefetch"), 10_000)
	if _, err := f.WriteAt(tl, payload, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := f.ReadAt(tl, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip mismatch")
	}
	m := sys.Metrics()
	if m.Reads == 0 || m.Writes == 0 {
		t.Fatalf("metrics not populated: %+v", m)
	}
	if tl.Elapsed() <= 0 {
		t.Fatal("no virtual time charged")
	}
}

func TestDropAllCaches(t *testing.T) {
	sys := crossprefetch.NewSystem(crossprefetch.Config{MemoryBytes: 64 << 20})
	tl := sys.Timeline()
	if err := sys.CreateSynthetic(tl, "big", 8<<20); err != nil {
		t.Fatal(err)
	}
	f, _ := sys.Open(tl, "big")
	buf := make([]byte, 1<<20)
	f.ReadAt(tl, buf, 0)
	if sys.Cache().Used() == 0 {
		t.Fatal("cache should be warm")
	}
	sys.DropAllCaches(tl)
	if sys.Cache().Used() != 0 {
		t.Fatalf("cache still holds %d pages", sys.Cache().Used())
	}
	// The same handle still works after the drop.
	if _, err := f.ReadAt(tl, buf, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteDeviceConfig(t *testing.T) {
	sys := crossprefetch.NewSystem(crossprefetch.Config{
		Device:      blockdev.RemoteNVMeConfig(),
		MemoryBytes: 16 << 20,
	})
	if sys.Device().Config().Name != "nvmeof0" {
		t.Fatalf("device = %s", sys.Device().Config().Name)
	}
}

func TestLayoutSelection(t *testing.T) {
	sys := crossprefetch.NewSystem(crossprefetch.Config{Layout: crossprefetch.LayoutF2FS})
	if sys.FS().Layout() != crossprefetch.LayoutF2FS {
		t.Fatal("layout not applied")
	}
}

func TestNewProcessIsolation(t *testing.T) {
	sys := crossprefetch.NewSystem(crossprefetch.Config{
		MemoryBytes: 64 << 20,
		Approach:    crossprefetch.CrossPredictOpt,
	})
	tl := sys.Timeline()
	if err := sys.CreateSynthetic(tl, "shared", 32<<20); err != nil {
		t.Fatal(err)
	}
	p1 := sys.NewProcess()
	p2 := sys.NewProcess()
	f1, err := p1.Open(tl, "shared")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16<<10)
	for off := int64(0); off < 4<<20; off += int64(len(buf)) {
		f1.ReadAt(tl, buf, off)
	}
	// Process stats are private...
	if p1.Stats().PrefetchCalls == 0 {
		t.Fatal("process 1 should have prefetched")
	}
	if p2.Stats().PrefetchCalls != 0 {
		t.Fatal("process 2 stats leaked from process 1")
	}
	// ...but the page cache is shared: process 2 hits what 1 fetched.
	f2, _ := p2.Open(tl, "shared")
	missesBefore := sys.Cache().Stats().Misses
	f2.ReadAt(tl, buf, 0)
	if got := sys.Cache().Stats().Misses; got != missesBefore {
		t.Fatalf("process 2 should hit process 1's pages (misses %d -> %d)", missesBefore, got)
	}
}

func TestTelemetryAuditReconciles(t *testing.T) {
	// The audit cross-checks every layer's counters against its neighbors:
	// any double count or missed decrement in the instrumentation (or in
	// the accounting it observes) surfaces as an invariant violation. Run
	// it over both a sequential scan (prefetch-heavy) and a random workload
	// under memory pressure (eviction/waste-heavy).
	run := func(t *testing.T, random bool) {
		sys := crossprefetch.NewSystem(crossprefetch.Config{
			Approach:    crossprefetch.CrossPredictOpt,
			MemoryBytes: 16 << 20,
			Telemetry:   true,
		})
		tl := sys.Timeline()
		if err := sys.CreateSynthetic(tl, "data", 32<<20); err != nil {
			t.Fatal(err)
		}
		f, err := sys.Open(tl, "data")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 16384)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 1024; i++ {
			off := int64(i) * int64(len(buf))
			if random {
				off = rng.Int63n(32<<20 - int64(len(buf)))
			}
			if _, err := f.ReadAt(tl, buf, off); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Close(tl); err != nil {
			t.Fatal(err)
		}
		if err := sys.AuditTelemetry(); err != nil {
			t.Fatal(err)
		}
		snap := sys.Metrics().Telemetry
		if snap == nil {
			t.Fatal("Metrics.Telemetry nil with telemetry enabled")
		}
		if snap.Counter(telemetry.CtrCacheInsertedPages) == 0 {
			t.Fatal("no cache insertions recorded")
		}
		if snap.EventsTotal == 0 {
			t.Fatal("no prefetch decisions traced")
		}
	}
	t.Run("sequential", func(t *testing.T) { run(t, false) })
	t.Run("random", func(t *testing.T) { run(t, true) })
}

func TestTelemetryDisabledByDefault(t *testing.T) {
	sys := crossprefetch.NewSystem(crossprefetch.Config{MemoryBytes: 16 << 20})
	if sys.Telemetry() != nil {
		t.Fatal("recorder allocated without opt-in")
	}
	if sys.Metrics().Telemetry != nil {
		t.Fatal("Metrics.Telemetry non-nil without opt-in")
	}
	if err := sys.AuditTelemetry(); err != crossprefetch.ErrTelemetryDisabled {
		t.Fatalf("AuditTelemetry = %v, want ErrTelemetryDisabled", err)
	}
}
