// Span-tracing integration tests: Chrome trace-event export, cross-layer
// nesting, critical-path attribution of a faulted read, same-seed
// determinism, zero-allocation disabled paths, and the audit's
// spans-vs-counters reconciliation.
package crossprefetch_test

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	crossprefetch "repro"
	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// traceEvent mirrors one Chrome trace-event object for parsing.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// faultedReadSystem builds a traced system whose reads suffer one
// transient fault per request site plus an injected 2ms stall, so a cold
// read exercises device service, queueing, stalls, and retry backoff.
func faultedReadSystem(t *testing.T) *crossprefetch.System {
	t.Helper()
	sys := crossprefetch.NewSystem(crossprefetch.Config{
		MemoryBytes: 64 << 20,
		Telemetry:   true,
		Trace:       true,
	})
	tl := sys.Timeline()
	if err := sys.CreateSynthetic(tl, "data", 8<<20); err != nil {
		t.Fatal(err)
	}
	sys.Device().SetFaultInjector(faultinject.New(faultinject.Plan{
		Seed:             1,
		TransientRepeats: 1,
		Ranges: []faultinject.RangeFault{
			{Lo: 0, Hi: 1 << 40, Class: faultinject.Transient, Reads: true, Repeats: 1},
		},
		StallProb: 1,
		Stall:     2_000_000, // 2ms
	}))
	return sys
}

// TestTraceFaultedReadExport is the acceptance test: run a faulted read,
// export the trace the same way crossbench -trace does, parse it as
// Chrome trace-event JSON, verify parent/child nesting across all four
// layers, and confirm the critical-path slices of the slow read sum to
// 100% of the root span's duration.
func TestTraceFaultedReadExport(t *testing.T) {
	sys := faultedReadSystem(t)
	tl := sys.Timeline()
	f, err := sys.Open(tl, "data")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256<<10)
	if _, err := f.ReadAt(tl, buf, 0); err != nil {
		t.Fatalf("read should survive transient faults: %v", err)
	}

	var out bytes.Buffer
	if err := telemetry.WriteChromeTrace(&out,
		[]telemetry.TraceProcess{{Name: "test", Tracer: sys.Tracer()}}); err != nil {
		t.Fatal(err)
	}
	var trace chromeTrace
	if err := json.Unmarshal(out.Bytes(), &trace); err != nil {
		t.Fatalf("crossbench -trace output is not valid Chrome trace JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ns" || len(trace.TraceEvents) == 0 {
		t.Fatalf("malformed trace: unit=%q events=%d", trace.DisplayTimeUnit, len(trace.TraceEvents))
	}

	// Find the slowest lib.read root thread.
	var root *traceEvent
	for i, ev := range trace.TraceEvents {
		if ev.Ph == "X" && ev.Name == "lib.read" {
			if root == nil || ev.Dur > root.Dur {
				root = &trace.TraceEvents[i]
			}
		}
	}
	if root == nil {
		t.Fatal("no lib.read root span in trace")
	}

	// nested reports whether a span event lies within container's window
	// on the same thread.
	nested := func(ev, container *traceEvent) bool {
		const eps = 1e-6
		return ev.Pid == container.Pid && ev.Tid == container.Tid &&
			ev.Ts >= container.Ts-eps && ev.Ts+ev.Dur <= container.Ts+container.Dur+eps
	}
	// Layer witnesses, each nested under the library root: the VFS demand
	// fetch, a page-cache charge, and the device service span; the device
	// span must additionally nest inside the VFS fetch (parent/child
	// chain lib -> vfs -> dev).
	var vfsFetch *traceEvent
	for i, ev := range trace.TraceEvents {
		if ev.Ph == "X" && ev.Name == "vfs.demand_fetch" && nested(&trace.TraceEvents[i], root) {
			vfsFetch = &trace.TraceEvents[i]
			break
		}
	}
	if vfsFetch == nil {
		t.Fatal("no vfs.demand_fetch span nested under lib.read")
	}
	var haveCache, haveDev, haveStall, haveRetry bool
	for i, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		e := &trace.TraceEvents[i]
		switch {
		case strings.HasPrefix(ev.Name, "cache.") && nested(e, root):
			haveCache = true
		case ev.Name == "dev.read" && nested(e, vfsFetch):
			haveDev = true
		case (ev.Name == "dev.stall" || ev.Name == "dev.fault") && nested(e, root):
			haveStall = true
		case ev.Name == "vfs.retry_backoff" && nested(e, vfsFetch):
			haveRetry = true
		}
	}
	if !haveCache || !haveDev || !haveStall || !haveRetry {
		t.Fatalf("missing layer spans: cache=%v dev=%v stall=%v retry=%v",
			haveCache, haveDev, haveStall, haveRetry)
	}
	if _, ok := root.Args["critical_path"].(string); !ok {
		t.Fatal("root span args missing critical_path summary")
	}

	// Critical-path exactness on the retained root itself.
	var slow *telemetry.Span
	for _, r := range sys.Tracer().Roots() {
		if r.Op() == telemetry.OpRead && (slow == nil || r.Duration() > slow.Duration()) {
			slow = r
		}
	}
	if slow == nil {
		t.Fatal("flight recorder retained no read roots")
	}
	slices := telemetry.CriticalPath(slow)
	var sum int64
	var pct float64
	cats := map[string]bool{}
	for _, sl := range slices {
		sum += sl.Ns
		pct += sl.Percent
		cats[sl.Name] = true
	}
	if sum != int64(slow.Duration()) {
		t.Fatalf("critical-path slices sum to %dns, root duration %dns", sum, slow.Duration())
	}
	if math.Abs(pct-100) > 1e-6 {
		t.Fatalf("critical-path percentages sum to %v, want 100", pct)
	}
	for _, want := range []string{"device", "stall", "retry"} {
		if !cats[want] {
			t.Fatalf("faulted read's critical path lacks %q: %s",
				want, telemetry.FormatCriticalPath(slices))
		}
	}
}

// TestTraceDeterministic runs the identical single-threaded faulted
// workload twice with the same seed and requires byte-identical Chrome
// trace output. `make race` runs this under the race detector.
func TestTraceDeterministic(t *testing.T) {
	run := func() []byte {
		sys := faultedReadSystem(t)
		tl := sys.Timeline()
		f, err := sys.Open(tl, "data")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64<<10)
		for i := int64(0); i < 16; i++ {
			if _, err := f.ReadAt(tl, buf, i*int64(len(buf))); err != nil {
				t.Fatal(err)
			}
		}
		var out bytes.Buffer
		if err := telemetry.WriteChromeTrace(&out,
			[]telemetry.TraceProcess{{Name: "run", Tracer: sys.Tracer()}}); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed runs produced different traces (%d vs %d bytes)", len(a), len(b))
	}
}

// TestTraceDisabledAllocParity proves disabling tracing costs nothing:
// a warm-cache read allocates exactly as much on a system with a
// never-sampling tracer as on one built without any tracer.
func TestTraceDisabledAllocParity(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops items by design; alloc guard is meaningless")
	}
	measure := func(cfg crossprefetch.Config) float64 {
		cfg.MemoryBytes = 64 << 20
		sys := crossprefetch.NewSystem(cfg)
		tl := sys.Timeline()
		if err := sys.CreateSynthetic(tl, "data", 1<<20); err != nil {
			t.Fatal(err)
		}
		f, err := sys.Open(tl, "data")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 16<<10)
		if _, err := f.ReadAt(tl, buf, 0); err != nil { // warm the cache
			t.Fatal(err)
		}
		return testing.AllocsPerRun(100, func() {
			if _, err := f.ReadAt(tl, buf, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
	off := measure(crossprefetch.Config{})
	never := measure(crossprefetch.Config{Trace: true, TraceSampleEvery: math.MaxInt64})
	if off != never {
		t.Fatalf("unsampled tracing changed ReadAt allocations: off=%v never=%v", off, never)
	}
}

// TestTraceAuditReconciliation checks the audit's spans-vs-counters
// invariant end to end: under full sampling the page totals accumulated
// on spans must equal the VFS demand/prefetch counters.
func TestTraceAuditReconciliation(t *testing.T) {
	sys := crossprefetch.NewSystem(crossprefetch.Config{
		MemoryBytes: 64 << 20,
		Approach:    crossprefetch.CrossPredictOpt,
		Telemetry:   true,
		Trace:       true,
	})
	tl := sys.Timeline()
	if err := sys.CreateSynthetic(tl, "data", 16<<20); err != nil {
		t.Fatal(err)
	}
	f, err := sys.Open(tl, "data")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128<<10)
	for i := int64(0); i < 32; i++ {
		if _, err := f.ReadAt(tl, buf, i*int64(len(buf))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.AuditTelemetry(); err != nil {
		t.Fatalf("audit failed: %v", err)
	}
	m := sys.Metrics()
	if m.Trace == nil || m.Trace.SampledRoots == 0 {
		t.Fatalf("trace stats missing or empty: %+v", m.Trace)
	}
	if m.Trace.DemandPages+m.Trace.PrefetchPages == 0 {
		t.Fatal("span page totals empty despite device reads")
	}

	var prom bytes.Buffer
	if err := m.Telemetry.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"crossprefetch_tracer_sampled_roots_total",
		"crossprefetch_tracer_dropped_spans_total",
		"crossprefetch_events_dropped_total",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("Prometheus exposition missing %s:\n%s", want, prom.String())
		}
	}
}

// TestTraceSampledStats checks 1-in-N sampling bookkeeping through the
// public config surface.
func TestTraceSampledStats(t *testing.T) {
	sys := crossprefetch.NewSystem(crossprefetch.Config{
		MemoryBytes:      64 << 20,
		Trace:            true,
		TraceSampleEvery: 4,
	})
	tl := sys.Timeline()
	if err := sys.CreateSynthetic(tl, "data", 1<<20); err != nil {
		t.Fatal(err)
	}
	f, err := sys.Open(tl, "data")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	for i := int64(0); i < 16; i++ {
		if _, err := f.ReadAt(tl, buf, i*4096); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.Tracer().Stats()
	if st.SampledRoots == 0 || st.SkippedRoots == 0 {
		t.Fatalf("1-in-4 sampling recorded %d sampled / %d skipped", st.SampledRoots, st.SkippedRoots)
	}
	if st.SampledRoots+st.SkippedRoots < 16 {
		t.Fatalf("only %d root operations seen, want >= 16", st.SampledRoots+st.SkippedRoots)
	}
}
