// Benchmarks: one testing.B per reproduced table and figure. Each bench
// executes the corresponding experiment at smoke-test scale and reports
// the headline simulated metric alongside wall time; run the crossbench
// CLI for paper-scale numbers.
package crossprefetch_test

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// runExperiment executes one registered experiment per iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	run, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	var rows int
	for i := 0; i < b.N; i++ {
		tbl, err := run(experiments.Options{Quick: true, Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		rows = len(tbl.Rows)
		reportHeadline(b, tbl)
	}
	b.ReportMetric(float64(rows), "rows")
}

// reportHeadline surfaces the experiment's primary metric for the
// CrossP[+predict+opt] (or last) row so bench output is meaningful.
func reportHeadline(b *testing.B, tbl *experiments.Table) {
	metricCol := -1
	for i, c := range tbl.Columns {
		if strings.Contains(c, "MB/s") || strings.Contains(c, "kops") {
			metricCol = i
			break
		}
	}
	if metricCol < 0 || len(tbl.Rows) == 0 {
		return
	}
	row := tbl.Rows[len(tbl.Rows)-1]
	for _, r := range tbl.Rows {
		for _, cell := range r {
			if strings.Contains(cell, "+predict+opt") {
				row = r
			}
		}
	}
	if v, err := strconv.ParseFloat(row[metricCol], 64); err == nil {
		b.ReportMetric(v, strings.ReplaceAll(tbl.Columns[metricCol], "/", "p"))
	}
}

// Figure 2 + Table 1: motivation analysis.
func BenchmarkFig2Motivation(b *testing.B) { runExperiment(b, "fig2") }

// Figure 5 + Table 3: microbenchmark grid.
func BenchmarkFig5Microbench(b *testing.B) { runExperiment(b, "fig5") }

// Figure 6: shared-file readers+writers scaling.
func BenchmarkFig6SharedScaling(b *testing.B) { runExperiment(b, "fig6") }

// Table 4: mmap throughput.
func BenchmarkTable4Mmap(b *testing.B) { runExperiment(b, "tab4") }

// Figure 7a: thread-count sensitivity.
func BenchmarkFig7aThreads(b *testing.B) { runExperiment(b, "fig7a") }

// Figure 7b: access patterns on ext4.
func BenchmarkFig7bPatterns(b *testing.B) { runExperiment(b, "fig7b") }

// Figure 7c: memory-capacity sensitivity.
func BenchmarkFig7cMemory(b *testing.B) { runExperiment(b, "fig7c") }

// Figure 7d: access patterns on F2FS.
func BenchmarkFig7dF2FS(b *testing.B) { runExperiment(b, "fig7d") }

// Table 5: incremental breakdown.
func BenchmarkTable5Breakdown(b *testing.B) { runExperiment(b, "tab5") }

// Figure 8a: remote NVMe-oF storage.
func BenchmarkFig8aRemote(b *testing.B) { runExperiment(b, "fig8a") }

// Figure 8b: Filebench multi-instance workloads.
func BenchmarkFig8bFilebench(b *testing.B) { runExperiment(b, "fig8b") }

// Figure 9a: YCSB A-F.
func BenchmarkFig9aYCSB(b *testing.B) { runExperiment(b, "fig9a") }

// Figure 9b: Snappy compression under memory pressure.
func BenchmarkFig9bSnappy(b *testing.B) { runExperiment(b, "fig9b") }

// Figure 10: kernel prefetch-limit sweep.
func BenchmarkFig10Limit(b *testing.B) { runExperiment(b, "fig10") }
