package crossprefetch_test

import (
	"fmt"

	crossprefetch "repro"
)

// ExampleNewSystem assembles a CrossPrefetch system, streams a file
// through the full cross-layered stack, and inspects the telemetry the
// readahead_info interface exports.
func ExampleNewSystem() {
	sys := crossprefetch.NewSystem(crossprefetch.Config{
		MemoryBytes: 256 << 20,
		Approach:    crossprefetch.CrossPredictOpt,
	})
	tl := sys.Timeline()

	// A 64MB file whose blocks materialize on demand.
	if err := sys.CreateSynthetic(tl, "data.bin", 64<<20); err != nil {
		panic(err)
	}
	f, err := sys.Open(tl, "data.bin")
	if err != nil {
		panic(err)
	}

	// Stream 16MB sequentially in 16KB reads: the predictor classifies
	// the stream and CROSS-LIB prefetches ahead of it.
	buf := make([]byte, 16<<10)
	for off := int64(0); off < 16<<20; off += int64(len(buf)) {
		if _, err := f.ReadAt(tl, buf, off); err != nil {
			panic(err)
		}
	}

	m := sys.Metrics()
	fmt.Println("pattern:", f.Predictor().State())
	fmt.Println("all demanded pages looked up:", m.Cache.Hits+m.Cache.Misses >= (16<<20)/4096)
	fmt.Println("prefetched ahead of demand:", m.Lib.PrefetchedPages > 0)
	fmt.Println("kernel crossings saved:", m.Lib.SavedPrefetches > 0)
	// Output:
	// pattern: definitely-sequential
	// all demanded pages looked up: true
	// prefetched ahead of demand: true
	// kernel crossings saved: true
}

// ExampleSystem_NewProcess shows two "processes" sharing one kernel: the
// second process's reads hit the pages the first one faulted in.
func ExampleSystem_NewProcess() {
	sys := crossprefetch.NewSystem(crossprefetch.Config{
		MemoryBytes: 128 << 20,
		Approach:    crossprefetch.CrossPredictOpt,
	})
	tl := sys.Timeline()
	sys.CreateSynthetic(tl, "shared.bin", 8<<20)

	p1, p2 := sys.NewProcess(), sys.NewProcess()
	buf := make([]byte, 64<<10)

	f1, _ := p1.Open(tl, "shared.bin")
	for off := int64(0); off < 8<<20; off += int64(len(buf)) {
		f1.ReadAt(tl, buf, off)
	}
	missesAfterP1 := sys.Cache().Stats().Misses

	f2, _ := p2.Open(tl, "shared.bin")
	for off := int64(0); off < 8<<20; off += int64(len(buf)) {
		f2.ReadAt(tl, buf, off)
	}
	fmt.Println("second process missed:", sys.Cache().Stats().Misses-missesAfterP1)
	// Output:
	// second process missed: 0
}
