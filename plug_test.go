// Acceptance tests for the block-layer submission scheduler: on a
// sequential multi-stream workload, plugging must cut device commands by
// a large constant factor at identical byte totals, finish the prefetch
// work earlier in virtual time, and keep every cross-layer telemetry
// invariant intact in both modes.
package crossprefetch_test

import (
	"fmt"
	"testing"

	crossprefetch "repro"
	"repro/internal/blockdev"
	"repro/internal/simtime"
)

// runPlugStreams runs 4 sequential streams over private 8MB files with
// the paper's idealistic FetchAll policy (whole-file prefetch on first
// read) and returns the device stats plus the virtual time at which the
// last prefetched page became resident.
func runPlugStreams(t *testing.T, plugged bool) (blockdev.Stats, simtime.Time) {
	t.Helper()
	const (
		streams   = 4
		fileBytes = int64(8 << 20)
	)
	sys := crossprefetch.NewSystem(crossprefetch.Config{
		MemoryBytes: 256 << 20,
		Approach:    crossprefetch.CrossFetchAllOpt,
		Telemetry:   true,
		Plug:        plugged,
		// Raise the congestion cutoff so both modes issue the full
		// prefetch volume and the comparison is byte-for-byte.
		CongestionLimit: simtime.Second,
	})
	tl0 := sys.Timeline()
	for i := 0; i < streams; i++ {
		if err := sys.CreateSynthetic(tl0, fmt.Sprintf("s%d", i), fileBytes); err != nil {
			t.Fatal(err)
		}
	}
	g := sys.Group()
	for i := 0; i < streams; i++ {
		g.Go(func(id int, tl *simtime.Timeline) {
			f, err := sys.Open(tl, fmt.Sprintf("s%d", id))
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close(tl)
			buf := make([]byte, 64<<10)
			for off := int64(0); off < fileBytes; off += int64(len(buf)) {
				if _, err := f.ReadAt(tl, buf, off); err != nil {
					t.Error(err)
					return
				}
			}
		})
	}
	g.Wait()

	if err := sys.AuditTelemetry(); err != nil {
		t.Fatalf("plugged=%v: telemetry audit: %v", plugged, err)
	}
	var ready simtime.Time
	for i := 0; i < streams; i++ {
		ino, err := sys.FS().Open(fmt.Sprintf("s%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if r := sys.Cache().File(ino.ID()).ResidentReadyAt(0, fileBytes/4096); r > ready {
			ready = r
		}
	}
	return sys.Device().Stats(), ready
}

func TestPlugCutsDeviceCommandsAtEqualBytes(t *testing.T) {
	off, offReady := runPlugStreams(t, false)
	on, onReady := runPlugStreams(t, true)

	if on.ReadBytes != off.ReadBytes {
		t.Fatalf("byte totals diverge: plugged %d, unplugged %d — merging must be byte-preserving",
			on.ReadBytes, off.ReadBytes)
	}
	if on.ReadOps > off.ReadOps*7/10 {
		t.Fatalf("plugged issued %d read commands vs %d unplugged: want ≥30%% reduction",
			on.ReadOps, off.ReadOps)
	}
	if on.MergedSegments == 0 {
		t.Fatal("plugged run reports no merged segments")
	}
	if onReady >= offReady {
		t.Fatalf("prefetch completion did not improve: plugged ready at %v, unplugged %v "+
			"(fewer per-command overheads must finish the same bytes earlier)",
			onReady, offReady)
	}
	t.Logf("read commands %d -> %d (%.0f%% fewer), merged segments %d, "+
		"prefetch complete %v -> %v",
		off.ReadOps, on.ReadOps, 100*(1-float64(on.ReadOps)/float64(off.ReadOps)),
		on.MergedSegments, offReady, onReady)
}
