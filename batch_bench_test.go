// Plug-scheduler benchmark sweep (`make bench-batch` → BENCH_PR5.json):
// sequential, strided, and shared-file multi-stream workloads, each run
// with plugging off and at queue depths 1/8/32. The headline metrics are
// the device read-command count and merged-segment count per run —
// merging must cut commands at identical byte totals.
package crossprefetch_test

import (
	"fmt"
	"testing"

	crossprefetch "repro"
	"repro/internal/simtime"
)

// runPlugBench runs one 4-stream workload per iteration and reports the
// device command statistics of the last run. stride is in 16KB units: 1
// reads every chunk (sequential), 4 reads every fourth chunk.
func runPlugBench(b *testing.B, shared bool, stride int64, plugged bool, qd int) {
	b.Helper()
	const (
		streams = 4
		ioSize  = int64(16 << 10)
		region  = int64(4 << 20)
	)
	var cmds, merged, bytes float64
	for i := 0; i < b.N; i++ {
		sys := crossprefetch.NewSystem(crossprefetch.Config{
			MemoryBytes: 128 << 20,
			Approach:    crossprefetch.CrossFetchAllOpt,
			Plug:        plugged,
			QueueDepth:  qd,
			// Raise the congestion cutoff so every variant issues the same
			// prefetch volume and commands are comparable byte-for-byte.
			CongestionLimit: simtime.Second,
		})
		tl0 := sys.Timeline()
		if shared {
			if err := sys.CreateSynthetic(tl0, "shared", streams*region); err != nil {
				b.Fatal(err)
			}
		} else {
			for s := 0; s < streams; s++ {
				if err := sys.CreateSynthetic(tl0, fmt.Sprintf("s%d", s), region); err != nil {
					b.Fatal(err)
				}
			}
		}
		g := sys.Group()
		for s := 0; s < streams; s++ {
			g.Go(func(id int, tl *simtime.Timeline) {
				name, base := fmt.Sprintf("s%d", id), int64(0)
				if shared {
					name, base = "shared", int64(id)*region
				}
				f, err := sys.Open(tl, name)
				if err != nil {
					b.Error(err)
					return
				}
				defer f.Close(tl)
				buf := make([]byte, ioSize)
				for off := base; off < base+region; off += stride * ioSize {
					if _, err := f.ReadAt(tl, buf, off); err != nil {
						b.Error(err)
						return
					}
				}
			})
		}
		g.Wait()
		st := sys.Device().Stats()
		cmds = float64(st.ReadOps)
		merged = float64(st.MergedSegments)
		bytes = float64(st.ReadBytes)
	}
	b.ReportMetric(cmds, "read-cmds")
	b.ReportMetric(merged, "merged-segs")
	b.ReportMetric(bytes/(1<<20), "read-MB")
}

// benchPlugVariants sweeps plug off and queue depths 1/8/32.
func benchPlugVariants(b *testing.B, shared bool, stride int64) {
	b.Run("plug-off", func(b *testing.B) { runPlugBench(b, shared, stride, false, 0) })
	for _, qd := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("plug-qd%d", qd), func(b *testing.B) {
			runPlugBench(b, shared, stride, true, qd)
		})
	}
}

func BenchmarkBatchSequential(b *testing.B) { benchPlugVariants(b, false, 1) }
func BenchmarkBatchStrided(b *testing.B)    { benchPlugVariants(b, false, 4) }
func BenchmarkBatchSharedFile(b *testing.B) { benchPlugVariants(b, true, 1) }
