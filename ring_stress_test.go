// Real-concurrency stress for the submission/completion rings: many
// goroutines submit batches against ONE shared ring while a dedicated
// reaper drains it, under -race via `make check`. Every SQE must produce
// exactly one byte-correct CQE, and after the storm the cross-layer
// telemetry audit must still reconcile exactly — including the ring
// ledger (SQEs == CQEs, dispatch batches vs plug commands).
package crossprefetch_test

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	crossprefetch "repro"
	"repro/internal/simtime"
)

// ringPattern is the file content at off (mirrors what the test writes).
func ringPattern(b []byte, off int64) {
	for i := range b {
		b[i] = byte((off + int64(i)) * 131)
	}
}

// TestRingSharedRaceStress: 8 submitter goroutines share one ring over
// one file — each stages read batches (plus periodic prefetch intents)
// and submits, spinning on ring-full backpressure; one reaper goroutine
// consumes completions concurrently and verifies every read's bytes
// against the known file content. The grab-all dispatch means any
// submitter may drain and complete chunks another submitter staged, so
// this exercises the cross-tenant completion path under the race
// detector.
func TestRingSharedRaceStress(t *testing.T) {
	const (
		block       = 4096
		filePages   = 2048
		submitters  = 8
		iters       = 60
		batchReads  = 4
		readBytes   = 2 * block
		prefetchTag = uint64(1) << 63
	)
	sys := crossprefetch.NewSystem(crossprefetch.Config{
		MemoryBytes: filePages * block * 4,
		BlockSize:   block,
		Telemetry:   true,
		Trace:       true,
		Plug:        true,
		Approach:    crossprefetch.CrossPredictOpt,
	})
	tl0 := sys.Timeline()
	f0, err := sys.Create(tl0, "shared")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, filePages*block)
	ringPattern(data, 0)
	if _, err := f0.WriteAt(tl0, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := f0.Fsync(tl0); err != nil {
		t.Fatal(err)
	}
	sys.DropAllCaches(tl0)

	ring := sys.Lib().NewRing(0, 256)
	const totalReads = submitters * iters * batchReads
	const totalPrefetch = submitters * ((iters + 7) / 8)
	offs := make([]int64, totalReads)
	bufs := make([][]byte, totalReads)

	var wg sync.WaitGroup
	for id := 0; id < submitters; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			tl := simtime.NewTimeline(0)
			f, err := sys.Open(tl, "shared")
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close(tl)
			for i := 0; i < iters; i++ {
				for j := 0; j < batchReads; j++ {
					u := uint64(id*iters*batchReads + i*batchReads + j)
					off := int64((id*2011+i*batchReads+j)*7919%(filePages-2)) * block
					offs[u] = off
					bufs[u] = make([]byte, readBytes)
					for ring.PrepRead(f, bufs[u], off, u) != nil {
						runtime.Gosched() // ring full: wait for the reaper
					}
				}
				if i%8 == 0 {
					u := prefetchTag | uint64(id*iters+i)
					off := int64((id*523+i)*101%(filePages-32)) * block
					for ring.PrepPrefetch(f, off, 32*block, u) != nil {
						runtime.Gosched()
					}
				}
				ring.Submit(tl)
			}
		}()
	}

	reaped := make(map[uint64]bool, totalReads+totalPrefetch)
	done := make(chan struct{})
	go func() {
		defer close(done)
		tlR := simtime.NewTimeline(0)
		want := make([]byte, readBytes)
		for len(reaped) < totalReads+totalPrefetch {
			for _, cq := range ring.Reap(tlR, 1) {
				if reaped[cq.User] {
					t.Errorf("user %#x completed twice", cq.User)
					continue
				}
				reaped[cq.User] = true
				if cq.Err != nil {
					t.Errorf("user %#x failed: %v", cq.User, cq.Err)
					continue
				}
				if cq.User&prefetchTag != 0 {
					continue
				}
				if cq.N != readBytes {
					t.Errorf("user %#x read %d bytes, want %d", cq.User, cq.N, readBytes)
					continue
				}
				ringPattern(want, offs[cq.User])
				if !bytes.Equal(bufs[cq.User], want) {
					t.Errorf("user %#x data mismatch at off %d", cq.User, offs[cq.User])
				}
			}
		}
	}()

	wg.Wait()
	<-done
	ring.Close()

	if len(reaped) != totalReads+totalPrefetch {
		t.Fatalf("reaped %d completions, want %d", len(reaped), totalReads+totalPrefetch)
	}
	st := ring.Stats()
	if st.SQEs != totalReads+totalPrefetch {
		t.Fatalf("ring accepted %d SQEs, want %d", st.SQEs, totalReads+totalPrefetch)
	}
	if st.Submits == 0 {
		t.Fatal("no kernel crossings recorded")
	}
	if ks := sys.Kernel().RingStats(); ks.Staged != 0 {
		t.Fatalf("%d chunks still staged at quiescence", ks.Staged)
	}
	// The whole storm must reconcile exactly across every layer.
	if err := sys.AuditTelemetry(); err != nil {
		t.Fatalf("telemetry audit after ring stress: %v", err)
	}
}
