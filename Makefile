# Tier-1 gate (see ROADMAP.md): every PR must leave `make check` green.
.PHONY: check build test vet race bench chaos errgate fmtgate plugate ringgate shedgate ctrgate armgate tiergate trace bench-json bench-parallel bench-batch bench-serve bench-overload bench-score bench-predict bench-tier

check: vet errgate fmtgate plugate ringgate shedgate ctrgate armgate tiergate build race

# Formatting gate: the tree must be gofmt-clean.
fmtgate:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "fmtgate: gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

# Swallowed-device-error gate: demand-path device accesses must never
# discard their error (the pre-fix `_ = f.v.dev.Access(...)` pattern).
errgate:
	@! grep -rn '_ = .*dev\.Access' --include='*.go' . \
		|| (echo 'errgate: swallowed device error (handle or propagate it)'; exit 1)

# Plug-API gate: the kernel's read paths must submit device I/O through
# the plug layer (blockdev.Plug), never against the device directly —
# that is what keeps plugged and passthrough modes byte-identical in
# accounting. Writes are exempt by design (see internal/vfs/writeback.go).
plugate:
	@! grep -n 'dev\.Access[A-Za-z]*(' \
		internal/vfs/vfs.go internal/vfs/io.go internal/vfs/crossos.go internal/vfs/mmap.go \
		internal/vfs/ring.go \
		|| (echo 'plugate: read-path device access outside the plug API'; exit 1)

# Ring-API gate: the serve frontend must dispatch through the
# submission/completion rings (Prep*/Submit/Reap), never by calling the
# synchronous read/write shims directly. The sync baseline lives in
# serve_baseline.go, which IS the deliberate exemption.
ringgate:
	@! grep -n '\.ReadAt(\|\.WriteAt(' \
		internal/experiments/serve.go cmd/crosserve/main.go \
		|| (echo 'ringgate: direct read/write call on the ring frontend (use the Ring API)'; exit 1)

# Shed-sentinel gate: every shed/deadline refusal on the ring path must
# be one of the exported sentinels (vfs.ErrShed, vfs.ErrDeadlineExceeded)
# so callers can errors.Is-dispatch on them — no ad-hoc errors.New in the
# overload path. The `var Err` declarations ARE the sentinels.
shedgate:
	@! grep -n 'errors\.New' \
		internal/vfs/ring.go internal/vfs/pressure.go internal/crosslib/ring.go \
		| grep -v 'var Err' \
		|| (echo 'shedgate: ad-hoc errors.New on the ring shed/deadline path (use the exported sentinels)'; exit 1)

# Counter-export gate: every Ctr*/Outcome*/Hist* constant declared in
# telemetry.go must appear both in the identifier-indexed export name
# table (telemetry.go, `CtrFoo: "foo"`) and in the Prometheus writer's
# help tables (prometheus.go) — a counter nobody can scrape is a counter
# that silently rots.
ctrgate:
	@missing=0; \
	for c in $$(grep -oE '^	(Ctr|Outcome|Hist)[A-Za-z0-9]+' internal/telemetry/telemetry.go | tr -d '\t' | sort -u); do \
		grep -qE "\b$$c:" internal/telemetry/telemetry.go \
			|| { echo "ctrgate: $$c missing from the export name table (telemetry.go)"; missing=1; }; \
		grep -qE "\b$$c\b" internal/telemetry/prometheus.go \
			|| { echo "ctrgate: $$c missing from the Prometheus help tables (prometheus.go)"; missing=1; }; \
	done; \
	exit $$missing

# Arm-export gate: every registered predictor arm must surface, by name,
# in the telemetry export table (snapshot Arms map + Prometheus arm=""
# label series) and in the /predictors admin legend. The export and
# admin sides iterate the arm registry programmatically, so the gate is
# a pair of negative-tested conformance tests rather than a source grep
# — each proves its check rejects a missing arm before accepting the
# real registry.
armgate:
	go test -run 'TestArmGate' ./internal/telemetry ./internal/admin

# Stack-API gate: the kernel's read paths must address I/O through the
# device stack (striping + tier resolution), never a raw member device —
# reaching past the stack would skip residency tracking and per-backend
# accounting. The Device() accessor in compat.go IS the one sanctioned
# member access (tests may also use it).
tiergate:
	@! grep -rn '\.Member(' internal/vfs --include='*.go' \
		| grep -v 'internal/vfs/compat\.go' | grep -v '_test\.go' \
		|| (echo 'tiergate: raw stack-member access on a kernel path (go through blockdev.Stack)'; exit 1)

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Fault-plan sweep under the race detector: the chaos harness plus every
# fault-injection, retry/backoff, and circuit-breaker test.
chaos:
	go test -race -run 'Chaos|Fault|Breaker|Retry|Inject|Transient|Poison|Dirty' ./...

bench:
	go test -bench=. -benchmem -run=^$$

# Span-tracing demo: run the fig5 microbenchmark grid with every operation
# traced, write trace.json (load it at ui.perfetto.dev), and print the
# critical-path report for the retained slow spans.
trace:
	go run ./cmd/crossbench -exp fig5 -quick -trace trace.json -trace-report

# Archive benchmark numbers (ns/op, allocs/op, pages/s) as JSON for
# cross-PR diffing.
bench-json:
	go run ./cmd/benchjson -out BENCH_PR3.json

# Parallel-scalability sweep: the real-concurrency benchmarks across
# GOMAXPROCS 1..8, appended to BENCH_PR4.json (which also holds the
# pre-sharding `baseline-singlelock` records for comparison).
bench-parallel:
	go run ./cmd/benchjson -out BENCH_PR4.json -append -label sharded \
		-bench 'BenchmarkParallel' -pkg . -cpu 1,2,4,8

# Block-scheduler sweep: plug off vs queue depths 1/8/32 on sequential,
# strided, and shared-file multi-stream workloads (device command counts
# as custom metrics), plus the warm-read path's allocs/op guard.
bench-batch:
	go run ./cmd/benchjson -out BENCH_PR5.json -label plug-sweep \
		-bench 'BenchmarkBatch' -pkg . -benchtime 3x
	go run ./cmd/benchjson -out BENCH_PR5.json -append -label warm-read \
		-bench 'BenchmarkTraceOffReadAt' -pkg .

# Serve-frontend sweep: the sync and ring dispatch paths across 1/8/64
# tenants at identical replay schedules — achieved dispatch depth,
# kernel crossings per op, and tail latency per cell, with the
# cross-layer telemetry audit enforced on every system.
bench-serve:
	go run ./cmd/crosserve -sweep -json BENCH_PR6.json

# Overload-resilience sweep: zipfian victims vs a full-file-scan
# antagonist across the five policy cells (isolated / no-budget / budget
# / budget+brownout / budget+deadline). Every cell byte-verifies, passes
# the telemetry audit including the exact per-tenant residency partition,
# is re-run and digest-compared for determinism, and the budgeted cells
# must hold victim p99 within 2x the isolated baseline.
bench-overload:
	go run ./cmd/crosserve -mode overload -tenants 4 -ops 200 -file-mb 16 \
		-sweep -json BENCH_PR7.json

# Scorecard sweep: one cell per access pattern (sequential / strided /
# zipfian / shared-file), each run twice with byte-identical scorecard
# JSON enforced, the scorecard<->recorder per-origin partition audited,
# and the sequential-vs-zipfian accuracy discrimination asserted.
bench-score:
	go run ./cmd/crosserve -mode score -file-mb 64 -iosize 65536 -ops 512 \
		-sessions 4 -json BENCH_PR8.json

# Predictor-ensemble sweep: sequential / zipfian-LSM / interleaved-shared,
# each replayed through the fixed sequentiality counter and the competing
#-arm ensemble. Every cell is byte-verified, audit-reconciled (per-arm
# issued/used/wasted partitions the ring-prefetch origin exactly), re-run
# with digest comparison for determinism, and the ensemble contract is
# asserted: beat the counter on zipfian-LSM warm hit rate AND pages/s,
# concede at most 2% on pure sequential.
bench-predict:
	go run ./cmd/crosserve -mode predict -file-mb 16 -iosize 16384 -ops 2048 \
		-json BENCH_PR9.json

# Tiered-stack sweep: the device-stack grid (RAID-0 width 1/2, half-remote
# NVMe-oF tier, cross-tier prefetch on/off, capped local tier) under
# sequential / zipfian-LSM / shared-file access. Every cell is
# byte-verified, audit-reconciled down to the exact per-backend
# command/byte partition, re-run with digest comparison for determinism,
# and the contracts are asserted: width-2 sequential throughput >= 1.7x
# width-1, cross-tier prefetch holds >= 70% of the all-local warm hit
# rate on the half-remote dataset, and tiered-with-prefetch beats
# prefetch-off tiered on warm p99 read latency.
bench-tier:
	go run ./cmd/crosserve -mode tier -file-mb 16 -iosize 16384 -ops 2048 \
		-json BENCH_PR10.json
