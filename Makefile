# Tier-1 gate (see ROADMAP.md): every PR must leave `make check` green.
.PHONY: check build test vet race bench chaos errgate fmtgate trace bench-json bench-parallel

check: vet errgate fmtgate build race

# Formatting gate: the tree must be gofmt-clean.
fmtgate:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "fmtgate: gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

# Swallowed-device-error gate: demand-path device accesses must never
# discard their error (the pre-fix `_ = f.v.dev.Access(...)` pattern).
errgate:
	@! grep -rn '_ = .*dev\.Access' --include='*.go' . \
		|| (echo 'errgate: swallowed device error (handle or propagate it)'; exit 1)

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Fault-plan sweep under the race detector: the chaos harness plus every
# fault-injection, retry/backoff, and circuit-breaker test.
chaos:
	go test -race -run 'Chaos|Fault|Breaker|Retry|Inject|Transient|Poison|Dirty' ./...

bench:
	go test -bench=. -benchmem -run=^$$

# Span-tracing demo: run the fig5 microbenchmark grid with every operation
# traced, write trace.json (load it at ui.perfetto.dev), and print the
# critical-path report for the retained slow spans.
trace:
	go run ./cmd/crossbench -exp fig5 -quick -trace trace.json -trace-report

# Archive benchmark numbers (ns/op, allocs/op, pages/s) as JSON for
# cross-PR diffing.
bench-json:
	go run ./cmd/benchjson -out BENCH_PR3.json

# Parallel-scalability sweep: the real-concurrency benchmarks across
# GOMAXPROCS 1..8, appended to BENCH_PR4.json (which also holds the
# pre-sharding `baseline-singlelock` records for comparison).
bench-parallel:
	go run ./cmd/benchjson -out BENCH_PR4.json -append -label sharded \
		-bench 'BenchmarkParallel' -pkg . -cpu 1,2,4,8
