# Tier-1 gate (see ROADMAP.md): every PR must leave `make check` green.
.PHONY: check build test vet race bench chaos errgate

check: vet errgate build race

vet:
	go vet ./...

# Swallowed-device-error gate: demand-path device accesses must never
# discard their error (the pre-fix `_ = f.v.dev.Access(...)` pattern).
errgate:
	@! grep -rn '_ = .*dev\.Access' --include='*.go' . \
		|| (echo 'errgate: swallowed device error (handle or propagate it)'; exit 1)

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Fault-plan sweep under the race detector: the chaos harness plus every
# fault-injection, retry/backoff, and circuit-breaker test.
chaos:
	go test -race -run 'Chaos|Fault|Breaker|Retry|Inject|Transient|Poison|Dirty' ./...

bench:
	go test -bench=. -benchmem -run=^$$
