# Tier-1 gate (see ROADMAP.md): every PR must leave `make check` green.
.PHONY: check build test vet race bench

check: vet build race

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem -run=^$$
