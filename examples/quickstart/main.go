// Quickstart: assemble a simulated system, stream a file through
// CrossPrefetch, and inspect the cross-layer telemetry the readahead_info
// interface exports.
package main

import (
	"fmt"
	"log"

	crossprefetch "repro"
)

func main() {
	// A machine with 256MB of page cache on the paper's NVMe model,
	// running the full CrossPrefetch stack.
	sys := crossprefetch.NewSystem(crossprefetch.Config{
		MemoryBytes: 256 << 20,
		Approach:    crossprefetch.CrossPredictOpt,
	})

	tl := sys.Timeline()

	// Provision a 512MB file (synthetic content, no host RAM needed).
	if err := sys.CreateSynthetic(tl, "dataset.bin", 512<<20); err != nil {
		log.Fatal(err)
	}

	f, err := sys.Open(tl, "dataset.bin")
	if err != nil {
		log.Fatal(err)
	}

	// Stream the first 64MB in 16KB reads. CROSS-LIB detects the
	// sequential pattern, prefetches ahead through readahead_info, and
	// the reads turn into cache hits.
	buf := make([]byte, 16<<10)
	var total int64
	for off := int64(0); off < 64<<20; off += int64(len(buf)) {
		n, err := f.ReadAt(tl, buf, off)
		if err != nil {
			log.Fatal(err)
		}
		total += int64(n)
	}

	m := sys.Metrics()
	fmt.Printf("read %d MB in %v of virtual time\n", total>>20, tl.Elapsed())
	fmt.Printf("cache: %d hits, %d misses (%.1f%% miss)\n",
		m.Cache.Hits, m.Cache.Misses, m.Cache.MissPercent())
	fmt.Printf("library: %d readahead_info calls, %d elided via cache state, %d pages prefetched\n",
		m.Lib.PrefetchCalls, m.Lib.SavedPrefetches, m.Lib.PrefetchedPages)
	fmt.Printf("predictor classified the stream as: %v\n", f.Predictor().State())
	fmt.Printf("device: %s\n", m.Device)
}
