// compression: parallel Snappy-style compression of a file set under a
// constrained memory budget — the paper's Figure 9b scenario, where
// CrossPrefetch's aggressive prefetching and eviction keeps a streaming
// working set flowing through limited memory.
package main

import (
	"fmt"
	"log"

	crossprefetch "repro"
	"repro/internal/snappy"
)

func run(a crossprefetch.Approach, memMB int64) snappy.AppResult {
	res, err := snappy.RunApp(snappy.AppConfig{
		Sys: crossprefetch.NewSystem(crossprefetch.Config{
			MemoryBytes: memMB << 20,
			Approach:    a,
		}),
		Files:     16,
		FileBytes: 8 << 20,
		Threads:   4,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("compressing 16 x 8MB files with 4 threads")
	for _, memMB := range []int64{32, 64, 128} {
		app := run(crossprefetch.AppOnly, memMB)
		cross := run(crossprefetch.CrossPredictOpt, memMB)
		fmt.Printf("  mem=%3dMB (1:%d): APPonly %7.1f MB/s | CrossPrefetch %7.1f MB/s (%.2fx), ratio %.2f\n",
			memMB, 128/memMB, app.MBPerSec, cross.MBPerSec,
			cross.MBPerSec/app.MBPerSec, cross.Ratio)
	}
}
