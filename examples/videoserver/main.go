// videoserver: a streaming-video-server profile (the paper's Figure 8b
// workload) — many clients streaming large media files while new content
// is ingested, comparing prefetching approaches on aggregate bandwidth.
package main

import (
	"fmt"
	"log"

	crossprefetch "repro"
	"repro/internal/filebench"
)

func run(a crossprefetch.Approach) filebench.Result {
	res, err := filebench.Run(filebench.Config{
		Sys: crossprefetch.NewSystem(crossprefetch.Config{
			MemoryBytes: 128 << 20,
			Approach:    a,
		}),
		Profile:            filebench.VideoServer,
		Instances:          4,
		ThreadsPerInstance: 3, // 1 ingest + 2 streaming clients each
		BytesPerInstance:   64 << 20,
		OpsPerThread:       128,
		Seed:               3,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("videoserver: 4 instances, 64MB of media each, 128MB page cache")
	for _, a := range []crossprefetch.Approach{
		crossprefetch.AppOnly,
		crossprefetch.OSOnly,
		crossprefetch.CrossPredictOpt,
	} {
		res := run(a)
		fmt.Printf("  %-22s %8.1f MB/s  miss %5.1f%%\n", a, res.MBPerSec, res.MissPct)
	}
}
