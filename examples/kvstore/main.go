// kvstore: run the LSM key-value store (the RocksDB stand-in) under two
// prefetching regimes and compare the batched-random read throughput —
// a miniature of the paper's Figure 2 motivation experiment.
package main

import (
	"fmt"
	"log"

	crossprefetch "repro"
	"repro/internal/lsm"
)

func run(approach crossprefetch.Approach) lsm.BenchResult {
	res, err := lsm.RunBench(lsm.BenchConfig{
		Sys: crossprefetch.NewSystem(crossprefetch.Config{
			MemoryBytes: 96 << 20,
			Approach:    approach,
		}),
		DB:           lsm.Options{MemtableBytes: 1 << 20, BlockBytes: 16 << 10},
		NumKeys:      20_000,
		ValueBytes:   2048,
		Threads:      8,
		Workload:     lsm.MultiReadRandom,
		OpsPerThread: 2000,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("LSM store, 20k keys x 2KB, 8 threads, batched random reads")
	app := run(crossprefetch.AppOnly)
	fmt.Printf("  APPonly (RocksDB-style, readahead off): %s\n", app)
	cross := run(crossprefetch.CrossPredictOpt)
	fmt.Printf("  CrossPrefetch [+predict+opt]:           %s\n", cross)
	fmt.Printf("speedup: %.2fx, miss reduction: %.1f -> %.1f%%\n",
		cross.KopsPerSec/app.KopsPerSec, app.MissPct, cross.MissPct)
}
