// Command microbench runs the paper's custom microbenchmark (§5.2.1):
// multi-threaded 16KB reads over private or shared files, sequential or
// random, under any of the comparison approaches.
//
// Usage:
//
//	microbench -threads 8 -total 256 -shared -rand -approach cross-predict-opt
package main

import (
	"flag"
	"fmt"
	"os"

	crossprefetch "repro"
	"repro/internal/workload"
)

var approaches = map[string]crossprefetch.Approach{
	"app-only":          crossprefetch.AppOnly,
	"app-only-fincore":  crossprefetch.AppOnlyFincore,
	"os-only":           crossprefetch.OSOnly,
	"cross-predict":     crossprefetch.CrossPredict,
	"cross-predict-opt": crossprefetch.CrossPredictOpt,
	"cross-fetchall":    crossprefetch.CrossFetchAllOpt,
}

func main() {
	var (
		threads  = flag.Int("threads", 8, "reader threads")
		writers  = flag.Int("writers", 0, "concurrent writer threads (Figure 6)")
		totalMB  = flag.Int64("total", 256, "aggregate data footprint in MB")
		memMB    = flag.Int64("mem", 128, "page cache budget in MB")
		ioKB     = flag.Int64("io", 16, "per-read size in KB")
		shared   = flag.Bool("shared", false, "one shared file instead of private files")
		random   = flag.Bool("rand", false, "random access instead of sequential")
		useMmap  = flag.Bool("mmap", false, "use mmap loads instead of read()")
		approach = flag.String("approach", "os-only", "prefetching approach")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	a, ok := approaches[*approach]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown approach %q\n", *approach)
		os.Exit(2)
	}
	sys := crossprefetch.NewSystem(crossprefetch.Config{
		MemoryBytes: *memMB << 20,
		Approach:    a,
	})

	var (
		res workload.Result
		err error
	)
	if *useMmap {
		res, err = workload.RunMmap(workload.MmapConfig{
			Sys: sys, Threads: *threads, TotalBytes: *totalMB << 20,
			Sequential: !*random, Seed: *seed,
		})
	} else {
		res, err = workload.RunMicro(workload.MicroConfig{
			Sys: sys, Threads: *threads, Writers: *writers,
			IOSize: *ioKB << 10, TotalBytes: *totalMB << 20,
			Shared: *shared, Sequential: !*random, Seed: *seed,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %s\n", *approach, res)
	fmt.Printf("  virtual time %v; device: %s\n", res.Makespan, res.Metrics.Device)
	fmt.Printf("  prefetch syscalls=%d lib-calls=%d saved=%d\n",
		res.Metrics.Prefetch, res.Metrics.Lib.PrefetchCalls, res.Metrics.Lib.SavedPrefetches)
}
