// Command crosserve replays concurrent client sessions against one
// simulated CrossPrefetch system — the serving-tier frontend for the
// submission/completion rings. Each tenant gets its own file, its own
// ring descriptor (ring mode), and a fair share of the device via the
// kernel's per-tenant dispatch lanes; admission control is the ring's
// depth bound.
//
// Usage:
//
//	crosserve -mode rings -tenants 8 -sessions 4 -ops 200
//	crosserve -mode sync  -tenants 8
//	crosserve -sweep -json BENCH_PR6.json
//
// -sweep runs the sync and ring frontends across 1/8/64 tenants at
// identical replay schedules and writes one JSON record per cell —
// achieved dispatch depth, kernel crossings per op, and tail latency are
// the headline columns.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	crossprefetch "repro"
	"repro/internal/experiments"
	"repro/internal/simtime"
)

// record is one replay cell in the JSON output.
type record struct {
	Mode           string  `json:"mode"`
	Tenants        int     `json:"tenants"`
	Sessions       int     `json:"sessions_per_tenant"`
	Ops            int64   `json:"ops"`
	ClientMB       float64 `json:"client_mb"`
	Crossings      int64   `json:"crossings"`
	CrossingsPerOp float64 `json:"crossings_per_op"`
	MeanDepth      float64 `json:"mean_dispatch_depth"`
	MaxBatch       int64   `json:"max_dispatch_depth"`
	Backpressure   int64   `json:"ring_backpressure"`
	P50Us          float64 `json:"p50_us"`
	P99Us          float64 `json:"p99_us"`
	MakespanMs     float64 `json:"makespan_ms"`
	MBs            float64 `json:"mb_per_s"`
	MinTenantMB    float64 `json:"fair_min_tenant_mb"`
	MaxTenantMB    float64 `json:"fair_max_tenant_mb"`
	DeviceReadMB   float64 `json:"device_read_mb"`
	Audit          string  `json:"audit"`
}

func run(c experiments.ServeConfig, memMB int64, mode string) (record, error) {
	c.Sys = crossprefetch.NewSystem(crossprefetch.Config{
		MemoryBytes:     memMB << 20,
		Approach:        crossprefetch.CrossPredictOpt,
		Plug:            true,
		Telemetry:       true,
		Trace:           true,
		CongestionLimit: simtime.Second,
	})
	c.Rings = mode == "rings"
	res, err := experiments.RunServe(c)
	if err != nil {
		return record{}, err
	}
	audit := "ok"
	if err := c.Sys.AuditTelemetry(); err != nil {
		audit = err.Error()
	}
	us := func(d simtime.Duration) float64 {
		return float64(d) / float64(simtime.Microsecond)
	}
	return record{
		Mode:           mode,
		Tenants:        c.Tenants,
		Sessions:       c.Sessions,
		Ops:            res.Ops,
		ClientMB:       float64(res.Bytes) / (1 << 20),
		Crossings:      res.Crossings,
		CrossingsPerOp: res.CrossingsPerOp(),
		MeanDepth:      res.MeanDepth,
		MaxBatch:       res.MaxBatch,
		Backpressure:   res.Backpressure,
		P50Us:          us(res.P50),
		P99Us:          us(res.P99),
		MakespanMs:     float64(res.Makespan) / float64(simtime.Millisecond),
		MBs:            res.MBs(),
		MinTenantMB:    float64(res.MinTenantBytes) / (1 << 20),
		MaxTenantMB:    float64(res.MaxTenantBytes) / (1 << 20),
		DeviceReadMB:   res.DeviceReadMB,
		Audit:          audit,
	}, nil
}

func main() {
	var (
		mode     = flag.String("mode", "rings", "dispatch path: sync or rings")
		tenants  = flag.Int("tenants", 8, "concurrent tenants (one file and one ring each)")
		sessions = flag.Int("sessions", 4, "client sessions per tenant")
		ops      = flag.Int("ops", 200, "reads per session")
		batch    = flag.Int("batch", 8, "SQEs staged per ring submit")
		iosize   = flag.Int64("iosize", 64<<10, "bytes per read")
		depth    = flag.Int("depth", 0, "ring admission bound (0 = 4*batch)")
		fileMB   = flag.Int64("file-mb", 16, "per-tenant file size")
		memMB    = flag.Int64("mem-mb", 0, "page-cache memory (0 = half the aggregate dataset)")
		seed     = flag.Int64("seed", 1, "replay schedule seed")
		sweep    = flag.Bool("sweep", false, "run sync and rings across 1/8/64 tenants")
		jsonOut  = flag.String("json", "", "write records as JSON to this file")
	)
	flag.Parse()
	if *mode != "sync" && *mode != "rings" {
		fmt.Fprintf(os.Stderr, "crosserve: unknown -mode %q (want sync or rings)\n", *mode)
		os.Exit(2)
	}

	base := experiments.ServeConfig{
		Sessions: *sessions, Ops: *ops, Batch: *batch,
		IOSize: *iosize, Depth: *depth, FileMB: *fileMB, Seed: *seed,
	}
	mem := func(tenants int) int64 {
		if *memMB > 0 {
			return *memMB
		}
		return int64(tenants) * *fileMB / 2
	}

	var cells []struct {
		mode    string
		tenants int
	}
	if *sweep {
		for _, n := range []int{1, 8, 64} {
			for _, m := range []string{"sync", "rings"} {
				cells = append(cells, struct {
					mode    string
					tenants int
				}{m, n})
			}
		}
	} else {
		cells = append(cells, struct {
			mode    string
			tenants int
		}{*mode, *tenants})
	}

	var records []record
	for _, cell := range cells {
		c := base
		c.Tenants = cell.tenants
		rec, err := run(c, mem(cell.tenants), cell.mode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crosserve: %s-t%d: %v\n", cell.mode, cell.tenants, err)
			os.Exit(1)
		}
		records = append(records, rec)
		fmt.Printf("%-5s t=%-3d ops=%-6d cross/op=%.3f depth=%.1f (max %d) "+
			"p50=%.0fus p99=%.0fus makespan=%.1fms %.1fMB/s audit=%s\n",
			rec.Mode, rec.Tenants, rec.Ops, rec.CrossingsPerOp, rec.MeanDepth,
			rec.MaxBatch, rec.P50Us, rec.P99Us, rec.MakespanMs, rec.MBs, rec.Audit)
		if rec.Audit != "ok" {
			fmt.Fprintf(os.Stderr, "crosserve: telemetry audit failed for %s-t%d\n",
				rec.Mode, rec.Tenants)
			os.Exit(1)
		}
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "crosserve:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "crosserve:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records to %s\n", len(records), *jsonOut)
	}
}
