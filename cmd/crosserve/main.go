// Command crosserve replays concurrent client sessions against one
// simulated CrossPrefetch system — the serving-tier frontend for the
// submission/completion rings. Each tenant gets its own file, its own
// ring descriptor (ring mode), and a fair share of the device via the
// kernel's per-tenant dispatch lanes; admission control is the ring's
// depth bound.
//
// Usage:
//
//	crosserve -mode rings -tenants 8 -sessions 4 -ops 200
//	crosserve -mode sync  -tenants 8
//	crosserve -sweep -json BENCH_PR6.json
//	crosserve -mode overload -antagonist -budget-mb 8 -deadline 50us
//	crosserve -mode overload -sweep -json BENCH_PR7.json
//	crosserve -mode score -file-mb 64 -ops 512 -json BENCH_PR8.json
//	crosserve -mode predict -json BENCH_PR9.json
//	crosserve -mode tier -json BENCH_PR10.json
//	crosserve -mode rings -stripe 2 -tier-split 0.5 -remote-rtt 30us
//	crosserve -mode rings -admin :9090
//
// -admin serves the live observability plane for the run's duration:
// /metrics (Prometheus text with HELP metadata), /scorecards (per-file
// and per-tenant effectiveness JSON with interval-rate deltas since the
// previous scrape, filterable by ?tenant= / ?inode=), /predictors (the
// live per-inode predictor-arm table), /tiers (the device stack's
// per-backend occupancy, tier residency, and extent heat table),
// /tracez (the span flight recorder's slowest retained roots), and
// /debug/pprof. The listener drains with a bounded timeout on exit.
//
// -mode score sweeps sequential/strided/zipfian/shared-file access
// through the online scorecards and writes one JSON record per pattern;
// the cells must discriminate (sequential high accuracy, zipfian low
// accuracy and high pollution) and reproduce byte-identical scorecard
// JSON when re-run on the same seed.
//
// -mode predict sweeps sequential/zipfian-LSM/interleaved-shared access
// through the fixed sequentiality counter and the competing-predictor
// ensemble; each cell's warm-half hit rate and throughput are compared,
// the ensemble contract asserted (beat the counter on zipfian, give up
// no more than 2% on sequential), and every cell re-run to prove the
// scorecard JSON deterministic.
//
// -mode tier sweeps the device-stack grid — RAID-0 stripe width, a
// half-remote NVMe-oF tier, and cross-tier prefetch — under
// sequential/zipfian-LSM/shared-file access (see experiments.TierCells:
// every cell is byte-verified, audit-reconciled down to the per-backend
// command partition, re-run to an identical digest, and the striping /
// warm-hit / p99 contracts asserted before anything is written).
//
// The sync/rings frontends take the same stack shape directly:
// -stripe N stripes the local tier RAID-0 across N devices,
// -tier-split F starts fraction F of the extents on a remote NVMe-oF
// tier with cross-tier prefetch on, and -remote-rtt sets that tier's
// fabric round trip.
//
// -sweep runs the sync and ring frontends across 1/8/64 tenants at
// identical replay schedules and writes one JSON record per cell —
// achieved dispatch depth, kernel crossings per op, and tail latency are
// the headline columns.
//
// -mode overload replays zipfian victim tenants against an optional
// full-file-scan antagonist (-antagonist) under per-tenant memory
// budgets (-budget-mb, hard; soft = half) and optional prefetch
// deadlines (-deadline). With -sweep it runs the canonical five cells —
// isolated, no-budget, budget, budget+brownout, budget+deadline — and
// enforces the telemetry audit (exact tenant residency partition) plus
// the 2x-of-isolated victim p99 bound in every budgeted cell.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	crossprefetch "repro"
	"repro/internal/admin"
	"repro/internal/blockdev"
	"repro/internal/crosslib"
	"repro/internal/experiments"
	"repro/internal/simtime"
	"repro/internal/telemetry"
)

// liveSys tracks the cell currently replaying so the -admin plane's
// endpoints always read the live system (cells swap under one listener).
var liveSys atomic.Pointer[crossprefetch.System]

// startAdmin brings up the live admin plane on addr. The returned stop
// function drains the listener with a bounded timeout — call it before
// exiting so runs stay leak-free.
func startAdmin(addr string) func() {
	srv, err := admin.Start(addr, admin.Config{
		Snapshot: func() *telemetry.Snapshot {
			if s := liveSys.Load(); s != nil {
				return s.Telemetry().Snapshot()
			}
			return nil
		},
		Scorecard: func() *telemetry.ScorecardSnapshot {
			if s := liveSys.Load(); s != nil {
				return s.Scorecard().Snapshot()
			}
			return nil
		},
		Tracer: func() *telemetry.Tracer {
			if s := liveSys.Load(); s != nil {
				return s.Tracer()
			}
			return nil
		},
		Predictors: func() []crosslib.PredictorRow {
			if s := liveSys.Load(); s != nil {
				return s.Lib().PredictorTable()
			}
			return nil
		},
		Tiers: func() *blockdev.Stack {
			if s := liveSys.Load(); s != nil {
				return s.Stack()
			}
			return nil
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crosserve:", err)
		os.Exit(1)
	}
	fmt.Printf("admin plane on http://%s (/metrics /scorecards /predictors /tracez /debug/pprof)\n", srv.Addr())
	return func() {
		if err := srv.Shutdown(); err != nil {
			fmt.Fprintln(os.Stderr, "crosserve: admin shutdown:", err)
		}
	}
}

// record is one replay cell in the JSON output.
type record struct {
	Mode           string  `json:"mode"`
	Tenants        int     `json:"tenants"`
	Sessions       int     `json:"sessions_per_tenant"`
	Ops            int64   `json:"ops"`
	ClientMB       float64 `json:"client_mb"`
	Crossings      int64   `json:"crossings"`
	CrossingsPerOp float64 `json:"crossings_per_op"`
	MeanDepth      float64 `json:"mean_dispatch_depth"`
	MaxBatch       int64   `json:"max_dispatch_depth"`
	Backpressure   int64   `json:"ring_backpressure"`
	P50Us          float64 `json:"p50_us"`
	P99Us          float64 `json:"p99_us"`
	MakespanMs     float64 `json:"makespan_ms"`
	MBs            float64 `json:"mb_per_s"`
	MinTenantMB    float64 `json:"fair_min_tenant_mb"`
	MaxTenantMB    float64 `json:"fair_max_tenant_mb"`
	DeviceReadMB   float64 `json:"device_read_mb"`
	Audit          string  `json:"audit"`
}

// stackFlags carries the -stripe / -tier-split / -remote-rtt device
// stack shape into the sync/rings frontends.
type stackFlags struct {
	stripe    int
	tierSplit float64
	remoteRTT time.Duration
}

// apply configures cfg's device stack from the flags: RAID-0 striping
// at the requested width, and a remote NVMe-oF tier holding tierSplit
// of the extents with cross-tier prefetch on.
func (sf stackFlags) apply(cfg *crossprefetch.Config) {
	cfg.Stripe = sf.stripe
	if sf.tierSplit > 0 {
		cfg.Tier = blockdev.TierConfig{
			Enabled:           true,
			RemoteFrac:        sf.tierSplit,
			CrossTierPrefetch: true,
		}
		if sf.remoteRTT > 0 {
			cfg.Tier.Remote = blockdev.RemoteNVMeConfigRTT(simtime.Duration(sf.remoteRTT))
		}
	}
}

func run(c experiments.ServeConfig, memMB int64, mode string, sf stackFlags) (record, error) {
	cfg := crossprefetch.Config{
		MemoryBytes:     memMB << 20,
		Approach:        crossprefetch.CrossPredictOpt,
		Plug:            true,
		Telemetry:       true,
		Trace:           true,
		Scorecard:       true,
		CongestionLimit: simtime.Second,
	}
	sf.apply(&cfg)
	c.Sys = crossprefetch.NewSystem(cfg)
	liveSys.Store(c.Sys)
	c.Rings = mode == "rings"
	res, err := experiments.RunServe(c)
	if err != nil {
		return record{}, err
	}
	audit := "ok"
	if err := c.Sys.AuditTelemetry(); err != nil {
		audit = err.Error()
	}
	us := func(d simtime.Duration) float64 {
		return float64(d) / float64(simtime.Microsecond)
	}
	return record{
		Mode:           mode,
		Tenants:        c.Tenants,
		Sessions:       c.Sessions,
		Ops:            res.Ops,
		ClientMB:       float64(res.Bytes) / (1 << 20),
		Crossings:      res.Crossings,
		CrossingsPerOp: res.CrossingsPerOp(),
		MeanDepth:      res.MeanDepth,
		MaxBatch:       res.MaxBatch,
		Backpressure:   res.Backpressure,
		P50Us:          us(res.P50),
		P99Us:          us(res.P99),
		MakespanMs:     float64(res.Makespan) / float64(simtime.Millisecond),
		MBs:            res.MBs(),
		MinTenantMB:    float64(res.MinTenantBytes) / (1 << 20),
		MaxTenantMB:    float64(res.MaxTenantBytes) / (1 << 20),
		DeviceReadMB:   res.DeviceReadMB,
		Audit:          audit,
	}, nil
}

// overloadRecord is one overload cell in the JSON output.
type overloadRecord struct {
	Cell           string  `json:"cell"`
	Victims        int     `json:"victims"`
	VictimOps      int64   `json:"victim_ops"`
	VictimMB       float64 `json:"victim_mb"`
	P50Us          float64 `json:"p50_us"`
	P99Us          float64 `json:"p99_us"`
	P99VsIsolated  float64 `json:"p99_vs_isolated"`
	ScanMB         float64 `json:"scan_mb"`
	BudgetPages    int64   `json:"budget_pages"`
	ShedSQEs       int64   `json:"shed_sqes"`
	DeadlineMisses int64   `json:"deadline_misses"`
	Brownouts      int64   `json:"brownout_transitions"`
	TenantReclaims int64   `json:"tenant_reclaims"`
	Digest         string  `json:"determinism_digest"`
	Audit          string  `json:"audit"`
}

// overloadCell describes one policy point of the overload sweep.
type overloadCell struct {
	name       string
	antagonist bool
	budget     int64 // hard pages; 0 = unlimited
	brownout   bool
	deadline   simtime.Duration
}

func runOverloadCell(cl overloadCell, victims int, ops int, iosize, fileMB, memMB int64, seed int64) (overloadRecord, error) {
	sys := crossprefetch.NewSystem(crossprefetch.Config{
		MemoryBytes: memMB << 20,
		Approach:    crossprefetch.CrossPredictOpt,
		Plug:        true,
		Telemetry:   true,
		Scorecard:   true,
		Brownout:    cl.brownout,
	})
	liveSys.Store(sys)
	res, err := experiments.RunOverload(experiments.OverloadConfig{
		Sys: sys, Victims: victims, Ops: ops, IOSize: iosize,
		VictimMB: fileMB, ScanMB: 8 * fileMB,
		Antagonist:  cl.antagonist,
		BudgetPages: cl.budget,
		Deadline:    cl.deadline,
		Seed:        seed,
	})
	if err != nil {
		return overloadRecord{}, err
	}
	// RunOverload already enforced the audit; surface it in the record
	// for the JSON archive.
	audit := "ok"
	if err := sys.AuditTelemetry(); err != nil {
		audit = err.Error()
	}
	us := func(d simtime.Duration) float64 {
		return float64(d) / float64(simtime.Microsecond)
	}
	return overloadRecord{
		Cell:           cl.name,
		Victims:        victims,
		VictimOps:      res.VictimOps,
		VictimMB:       float64(res.VictimBytes) / (1 << 20),
		P50Us:          us(res.VictimP50),
		P99Us:          us(res.VictimP99),
		ScanMB:         float64(res.ScanBytes) / (1 << 20),
		BudgetPages:    cl.budget,
		ShedSQEs:       res.ShedSQEs,
		DeadlineMisses: res.DeadlineMisses,
		Brownouts:      res.Brownouts,
		TenantReclaims: res.TenantReclaims,
		Digest:         fmt.Sprintf("%016x", res.Digest),
		Audit:          audit,
	}, nil
}

func runOverload(victims, ops int, iosize, fileMB, memMB, budgetMB int64,
	deadline time.Duration, antagonist, sweep bool, seed int64, jsonOut string) {
	if memMB <= 0 {
		memMB = int64(victims+1) * fileMB / 2
	}
	bs := int64(4096)
	budget := budgetMB << 20 / bs
	if budget <= 0 {
		// Default hard cap: two equal shares of the cache per tenant
		// (soft = one share) — victims keep headroom, the scan does not.
		budget = 2 * (memMB << 20 / bs) / int64(victims+1)
	}
	dl := simtime.Duration(deadline)

	var cells []overloadCell
	if sweep {
		cells = []overloadCell{
			{name: "isolated"},
			{name: "no-budget", antagonist: true},
			{name: "budget", antagonist: true, budget: budget},
			{name: "budget+brownout", antagonist: true, budget: budget, brownout: true},
			{name: "budget+deadline", antagonist: true, budget: budget, brownout: true,
				deadline: 50 * simtime.Microsecond},
		}
	} else {
		cl := overloadCell{name: "custom", antagonist: antagonist, deadline: dl}
		if budgetMB > 0 {
			cl.budget = budget
			cl.brownout = true
		}
		cells = append(cells, cl)
	}

	var records []overloadRecord
	var isolatedP99 float64
	for _, cl := range cells {
		rec, err := runOverloadCell(cl, victims, ops, iosize, fileMB, memMB, seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crosserve: overload %s: %v\n", cl.name, err)
			os.Exit(1)
		}
		if cl.name == "isolated" {
			isolatedP99 = rec.P99Us
		}
		if isolatedP99 > 0 {
			rec.P99VsIsolated = rec.P99Us / isolatedP99
		}
		records = append(records, rec)
		// Single-cell runs have no isolated baseline; skip the ratio.
		vs := "n/a"
		if rec.P99VsIsolated > 0 {
			vs = fmt.Sprintf("%.2fx", rec.P99VsIsolated)
		}
		fmt.Printf("%-16s victims=%d ops=%-5d p50=%.1fus p99=%.1fus (%s) "+
			"shed=%d dl-miss=%d brownouts=%d t-reclaims=%d audit=%s\n",
			rec.Cell, rec.Victims, rec.VictimOps, rec.P50Us, rec.P99Us,
			vs, rec.ShedSQEs, rec.DeadlineMisses,
			rec.Brownouts, rec.TenantReclaims, rec.Audit)
		if rec.Audit != "ok" {
			fmt.Fprintf(os.Stderr, "crosserve: telemetry audit failed for overload %s\n", cl.name)
			os.Exit(1)
		}
		if cl.budget > 0 && isolatedP99 > 0 && rec.P99Us > 2*isolatedP99 {
			fmt.Fprintf(os.Stderr, "crosserve: overload %s: victim p99 %.1fus > 2x isolated %.1fus\n",
				cl.name, rec.P99Us, isolatedP99)
			os.Exit(1)
		}
	}

	if jsonOut != "" {
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "crosserve:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "crosserve:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records to %s\n", len(records), jsonOut)
	}
}

// scoreRecord is one scorecard-sweep cell in the JSON output.
type scoreRecord struct {
	Pattern   string  `json:"pattern"`
	Reads     int64   `json:"reads"`
	ClientMB  float64 `json:"client_mb"`
	Issued    int64   `json:"pf_issued_pages"`
	Used      int64   `json:"pf_used_pages"`
	Wasted    int64   `json:"pf_wasted_pages"`
	Evicted   int64   `json:"evicted_pages"`
	Accuracy  float64 `json:"accuracy"`
	Coverage  float64 `json:"coverage"`
	Pollution float64 `json:"pollution"`
	P50Us     float64 `json:"timeliness_p50_us"`
	P99Us     float64 `json:"timeliness_p99_us"`
	LatePages int64   `json:"late_pages"`
	Digest    string  `json:"scorecard_digest"`
}

// runScore sweeps the four access patterns through the online
// scorecards (see experiments.ScoreCells: every cell is byte-verified,
// audit-clean, and re-run to prove the scorecard JSON deterministic).
func runScore(fileMB, iosize int64, ops, clients int, seed int64, jsonOut string) {
	cells, err := experiments.ScoreCells(experiments.ScoreConfig{
		FileMB: fileMB, IOSize: iosize, Ops: ops, Clients: clients, Seed: seed,
		Observe: func(sys *crossprefetch.System) { liveSys.Store(sys) },
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crosserve: score:", err)
		os.Exit(1)
	}
	var records []scoreRecord
	for _, p := range []experiments.ScorePattern{
		experiments.PatternSequential, experiments.PatternStrided,
		experiments.PatternZipfian, experiments.PatternShared,
	} {
		r := cells[p]
		us := func(ns int64) float64 { return float64(ns) / float64(simtime.Microsecond) }
		rec := scoreRecord{
			Pattern: p.String(), Reads: r.Reads,
			ClientMB: float64(r.Bytes) / (1 << 20),
			Issued:   r.Issued, Used: r.Used, Wasted: r.Wasted, Evicted: r.Evicted,
			Accuracy: r.Accuracy, Coverage: r.Coverage, Pollution: r.Pollution,
			P50Us: us(r.TimelinessP50), P99Us: us(r.TimelinessP99),
			LatePages: r.LatePages,
			Digest:    fmt.Sprintf("%016x", r.Digest),
		}
		records = append(records, rec)
		fmt.Printf("%-12s reads=%-5d acc=%.3f cov=%.3f pol=%.3f t-p50=%.1fus t-p99=%.1fus late=%d digest=%s\n",
			rec.Pattern, rec.Reads, rec.Accuracy, rec.Coverage, rec.Pollution,
			rec.P50Us, rec.P99Us, rec.LatePages, rec.Digest)
	}
	if jsonOut != "" {
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "crosserve:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "crosserve:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records to %s\n", len(records), jsonOut)
	}
}

// predictRecord is one pattern × predictor-mode cell in the -mode
// predict JSON output.
type predictRecord struct {
	Pattern         string  `json:"pattern"`
	Mode            string  `json:"mode"` // "fixed" or "ensemble"
	Reads           int64   `json:"reads"`
	ClientMB        float64 `json:"client_mb"`
	LiveArm         string  `json:"live_arm"`
	Promotions      int64   `json:"promotions"`
	WarmReads       int64   `json:"warm_reads"`
	WarmHitRate     float64 `json:"warm_hit_rate"`
	WarmPagesPerSec float64 `json:"warm_pages_per_s"`
	Digest          string  `json:"scorecard_digest"`
}

// runPredict sweeps the three predict patterns through the fixed
// counter and the competing-predictor ensemble (see
// experiments.PredictCells: every cell is byte-verified, audit-clean,
// re-run to prove determinism, and the ensemble contract — beat the
// counter on zipfian-LSM, concede at most 2% on pure sequential — is
// asserted before anything is written).
func runPredict(fileMB, iosize int64, ops int, seed int64, jsonOut string) {
	cells, err := experiments.PredictCells(experiments.PredictConfig{
		FileMB: fileMB, IOSize: iosize, Ops: ops, Seed: seed,
		Observe: func(sys *crossprefetch.System) { liveSys.Store(sys) },
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crosserve: predict:", err)
		os.Exit(1)
	}
	var records []predictRecord
	for _, p := range []experiments.PredictPattern{
		experiments.PredictSequential, experiments.PredictZipfLSM,
		experiments.PredictInterleaved,
	} {
		cell := cells[p]
		for _, m := range []struct {
			name string
			res  *experiments.PredictResult
		}{{"fixed", cell.Fixed}, {"ensemble", cell.Ensemble}} {
			r := m.res
			rec := predictRecord{
				Pattern: p.String(), Mode: m.name, Reads: r.Reads,
				ClientMB: float64(r.Bytes) / (1 << 20),
				LiveArm:  r.LiveArm, Promotions: r.Promotions,
				WarmReads: r.WarmReads, WarmHitRate: r.WarmHitRate,
				WarmPagesPerSec: r.WarmPagesPerSec,
				Digest:          fmt.Sprintf("%016x", r.Digest),
			}
			records = append(records, rec)
			fmt.Printf("%-12s %-8s reads=%-5d arm=%-8s promo=%-2d warm-hit=%.3f warm-pages/s=%.0f digest=%s\n",
				rec.Pattern, rec.Mode, rec.Reads, rec.LiveArm, rec.Promotions,
				rec.WarmHitRate, rec.WarmPagesPerSec, rec.Digest)
		}
	}
	if jsonOut != "" {
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "crosserve:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "crosserve:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records to %s\n", len(records), jsonOut)
	}
}

// tierRecord is one stack × pattern cell in the -mode tier JSON output.
type tierRecord struct {
	Pattern            string  `json:"pattern"`
	Stack              string  `json:"stack"`
	Reads              int64   `json:"reads"`
	ClientMB           float64 `json:"client_mb"`
	WarmReads          int64   `json:"warm_reads"`
	WarmHitRate        float64 `json:"warm_hit_rate"`
	WarmPagesPerSec    float64 `json:"warm_pages_per_s"`
	P99Us              float64 `json:"p99_us"`
	Promotions         int64   `json:"promotions"`
	PrefetchPromotions int64   `json:"prefetch_promotions"`
	Demotions          int64   `json:"demotions"`
	CopybackMB         float64 `json:"copyback_mb"`
	BackendCommands    []int64 `json:"backend_commands"`
	Digest             string  `json:"determinism_digest"`
}

// runTier sweeps the device-stack grid under the three access patterns
// (see experiments.TierCells: every cell is byte-verified, audit-clean
// down to the per-backend command partition, re-run to an identical
// digest, and the striping / warm-hit / p99 contracts asserted before
// anything is written).
func runTier(fileMB, iosize int64, ops int, seed int64, jsonOut string) {
	cells, err := experiments.TierCells(experiments.TierConfigCell{
		FileMB: fileMB, IOSize: iosize, Ops: ops, Seed: seed,
		Observe: func(sys *crossprefetch.System) { liveSys.Store(sys) },
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crosserve: tier:", err)
		os.Exit(1)
	}
	var records []tierRecord
	for _, kr := range experiments.TierRows(cells) {
		r := kr.Result
		rec := tierRecord{
			Pattern: kr.Pattern, Stack: kr.Cell, Reads: r.Reads,
			ClientMB:  float64(r.Bytes) / (1 << 20),
			WarmReads: r.WarmReads, WarmHitRate: r.WarmHitRate,
			WarmPagesPerSec: r.WarmPagesPerSec, P99Us: r.P99Micros,
			Promotions:         r.Promotions,
			PrefetchPromotions: r.PrefetchPromotions,
			Demotions:          r.Demotions,
			CopybackMB:         float64(r.CopybackBytes) / (1 << 20),
			BackendCommands:    r.BackendCommands,
			Digest:             fmt.Sprintf("%016x", r.Digest),
		}
		records = append(records, rec)
		fmt.Printf("%-12s %-17s reads=%-5d warm-hit=%.3f warm-pages/s=%-7.0f p99=%.1fus promo=%-3d pf-promo=%-3d demo=%-3d digest=%s\n",
			rec.Pattern, rec.Stack, rec.Reads, rec.WarmHitRate,
			rec.WarmPagesPerSec, rec.P99Us, rec.Promotions,
			rec.PrefetchPromotions, rec.Demotions, rec.Digest)
	}
	if jsonOut != "" {
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "crosserve:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "crosserve:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records to %s\n", len(records), jsonOut)
	}
}

func main() {
	var (
		mode     = flag.String("mode", "rings", "dispatch path: sync, rings, overload, score, predict, or tier")
		tenants  = flag.Int("tenants", 8, "concurrent tenants (one file and one ring each)")
		sessions = flag.Int("sessions", 4, "client sessions per tenant")
		ops      = flag.Int("ops", 200, "reads per session")
		batch    = flag.Int("batch", 8, "SQEs staged per ring submit")
		iosize   = flag.Int64("iosize", 64<<10, "bytes per read")
		depth    = flag.Int("depth", 0, "ring admission bound (0 = 4*batch)")
		fileMB   = flag.Int64("file-mb", 16, "per-tenant file size")
		memMB    = flag.Int64("mem-mb", 0, "page-cache memory (0 = half the aggregate dataset)")
		seed     = flag.Int64("seed", 1, "replay schedule seed")
		sweep    = flag.Bool("sweep", false, "run sync and rings across 1/8/64 tenants (overload: the five policy cells)")
		jsonOut  = flag.String("json", "", "write records as JSON to this file")

		// Device-stack flags (sync/rings modes).
		stripe    = flag.Int("stripe", 0, "RAID-0 stripe width of the local tier (0 or 1 = single device)")
		tierSplit = flag.Float64("tier-split", 0, "fraction of extents starting on the remote NVMe-oF tier (0 = tier off; cross-tier prefetch on)")
		remoteRTT = flag.Duration("remote-rtt", 0, "remote tier fabric round trip (0 = default 15us)")

		// Overload-mode flags.
		budgetMB   = flag.Int64("budget-mb", 0, "overload: per-tenant hard page-cache budget in MB (soft = half; 0 = equal share of memory)")
		deadline   = flag.Duration("deadline", 0, "overload: virtual deadline attached to coverage prefetches (e.g. 50us; 0 = none)")
		antagonist = flag.Bool("antagonist", false, "overload: run the full-file-scan antagonist tenant")

		adminAddr = flag.String("admin", "", "serve the live admin plane (/metrics /scorecards /tracez /debug/pprof) on this address for the run's duration")
	)
	flag.Parse()
	if *adminAddr != "" {
		stop := startAdmin(*adminAddr)
		defer stop()
	}
	switch *mode {
	case "sync", "rings":
	case "overload":
		runOverload(*tenants, *ops, *iosize, *fileMB, *memMB, *budgetMB,
			*deadline, *antagonist, *sweep, *seed, *jsonOut)
		return
	case "score":
		runScore(*fileMB, *iosize, *ops, *sessions, *seed, *jsonOut)
		return
	case "predict":
		runPredict(*fileMB, *iosize, *ops, *seed, *jsonOut)
		return
	case "tier":
		runTier(*fileMB, *iosize, *ops, *seed, *jsonOut)
		return
	default:
		fmt.Fprintf(os.Stderr, "crosserve: unknown -mode %q (want sync, rings, overload, score, predict, or tier)\n", *mode)
		os.Exit(2)
	}
	sf := stackFlags{stripe: *stripe, tierSplit: *tierSplit, remoteRTT: *remoteRTT}

	base := experiments.ServeConfig{
		Sessions: *sessions, Ops: *ops, Batch: *batch,
		IOSize: *iosize, Depth: *depth, FileMB: *fileMB, Seed: *seed,
	}
	mem := func(tenants int) int64 {
		if *memMB > 0 {
			return *memMB
		}
		return int64(tenants) * *fileMB / 2
	}

	var cells []struct {
		mode    string
		tenants int
	}
	if *sweep {
		for _, n := range []int{1, 8, 64} {
			for _, m := range []string{"sync", "rings"} {
				cells = append(cells, struct {
					mode    string
					tenants int
				}{m, n})
			}
		}
	} else {
		cells = append(cells, struct {
			mode    string
			tenants int
		}{*mode, *tenants})
	}

	var records []record
	for _, cell := range cells {
		c := base
		c.Tenants = cell.tenants
		rec, err := run(c, mem(cell.tenants), cell.mode, sf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crosserve: %s-t%d: %v\n", cell.mode, cell.tenants, err)
			os.Exit(1)
		}
		records = append(records, rec)
		fmt.Printf("%-5s t=%-3d ops=%-6d cross/op=%.3f depth=%.1f (max %d) "+
			"p50=%.0fus p99=%.0fus makespan=%.1fms %.1fMB/s audit=%s\n",
			rec.Mode, rec.Tenants, rec.Ops, rec.CrossingsPerOp, rec.MeanDepth,
			rec.MaxBatch, rec.P50Us, rec.P99Us, rec.MakespanMs, rec.MBs, rec.Audit)
		if rec.Audit != "ok" {
			fmt.Fprintf(os.Stderr, "crosserve: telemetry audit failed for %s-t%d\n",
				rec.Mode, rec.Tenants)
			os.Exit(1)
		}
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "crosserve:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "crosserve:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records to %s\n", len(records), *jsonOut)
	}
}
