// Command crossbench regenerates the paper's tables and figures.
//
// Usage:
//
//	crossbench -list
//	crossbench -exp fig7a [-scale 8] [-seed 1] [-csv out.csv]
//	crossbench -exp all [-quick]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// writeProfile dumps a named runtime profile ("mutex", "block") to path.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err == nil {
		err = pprof.Lookup(name).WriteTo(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s profile: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("%s profile: wrote %s (inspect with `go tool pprof %s`)\n", name, path, path)
}

// telemetryRecord is one audited system in the -telemetry-json output.
type telemetryRecord struct {
	Experiment string              `json:"experiment"`
	System     string              `json:"system"`
	Audit      string              `json:"audit"` // "ok" or the violation list
	Snapshot   *telemetry.Snapshot `json:"snapshot"`
}

func main() {
	var (
		exp     = flag.String("exp", "", "experiment ID (see -list), or \"all\"")
		list    = flag.Bool("list", false, "list available experiments")
		scale   = flag.Int64("scale", 0, "capacity divisor (0 = experiment default)")
		quick   = flag.Bool("quick", false, "smoke-test sizes")
		seed    = flag.Int64("seed", 1, "random seed")
		csv     = flag.String("csv", "", "also write results as CSV to this file")
		tel     = flag.Bool("telemetry", false, "record and audit cross-layer telemetry per system")
		telJSON = flag.String("telemetry-json", "", "write telemetry snapshots as JSON to this file (implies -telemetry)")

		trace       = flag.String("trace", "", "write sampled spans as Chrome trace-event JSON (Perfetto-loadable) to this file (implies -telemetry)")
		traceSample = flag.Int64("trace-sample", 1, "trace 1-in-N top-level operations")
		traceInode  = flag.Bool("trace-per-inode", false, "sample whole inodes instead of 1-in-N operations")
		traceReport = flag.Bool("trace-report", false, "print the critical-path report for retained slow spans (implies -trace sampling)")
		prom        = flag.String("prom", "", "write the last audited system's telemetry as Prometheus text exposition to this file (implies -telemetry)")

		mutexProf = flag.String("mutexprofile", "", "write a host mutex-contention profile (pprof) to this file")
		blockProf = flag.String("blockprofile", "", "write a host blocking profile (pprof) to this file")

		plug        = flag.Bool("plug", false, "enable the block-layer submission scheduler (plugging/merging) for every system")
		qd          = flag.Int("qd", 0, "device queue depth under -plug (0 = default 32)")
		mergeWindow = flag.Int64("merge-window", 0, "max merged command bytes under -plug (0 = default 8MB)")
	)
	flag.Parse()

	// Host-lock profiling: the virtual RWLedgers model the paper's lock
	// costs, but these profiles expose where the *simulator's* own mutexes
	// contend — the hot-path sharding work is validated against them.
	if *mutexProf != "" {
		runtime.SetMutexProfileFraction(5)
		defer writeProfile("mutex", *mutexProf)
	}
	if *blockProf != "" {
		runtime.SetBlockProfileRate(1000)
		defer writeProfile("block", *blockProf)
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-7s %s\n", id, experiments.Describe(id))
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}

	var csvOut *os.File
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		csvOut = f
	}

	if *telJSON != "" || *prom != "" {
		*tel = true
	}
	tracing := *trace != "" || *traceReport
	if tracing {
		*tel = true
	}
	if *plug || *qd > 0 || *mergeWindow > 0 {
		experiments.EnableBlockSched(&experiments.SchedConfig{
			Plug:             *plug,
			QueueDepth:       *qd,
			MergeWindowBytes: *mergeWindow,
		})
	}
	experiments.EnableTelemetry(*tel)
	if tracing {
		experiments.EnableTracing(&experiments.TraceConfig{
			SampleEvery: *traceSample,
			PerInode:    *traceInode,
			Seed:        *seed,
		})
	}

	var telRecords []telemetryRecord
	var traceProcs []telemetry.TraceProcess
	var lastSnapshot *telemetry.Snapshot
	opts := experiments.Options{Scale: *scale, Quick: *quick, Seed: *seed}
	for _, id := range ids {
		run, err := experiments.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		tbl, err := run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		tbl.Note("wall time %s", time.Since(start).Round(time.Millisecond))
		tbl.Print(os.Stdout)
		if csvOut != nil {
			fmt.Fprintf(csvOut, "# %s: %s\n", tbl.ID, tbl.Title)
			if err := tbl.WriteCSV(csvOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *tel {
			for _, r := range experiments.DrainTelemetry() {
				audit := "ok"
				if r.Audit != nil {
					audit = r.Audit.Error()
				}
				fmt.Printf("telemetry %s %s: audit %s", id, r.Label, audit)
				if r.Snapshot != nil {
					fmt.Printf(" (prefetch effectiveness %.2f, %d events)",
						r.Snapshot.PrefetchEffectiveness(), r.Snapshot.EventsTotal)
				}
				fmt.Println()
				telRecords = append(telRecords, telemetryRecord{
					Experiment: id, System: r.Label, Audit: audit, Snapshot: r.Snapshot,
				})
				if r.Snapshot != nil {
					lastSnapshot = r.Snapshot
				}
				if r.Tracer != nil {
					traceProcs = append(traceProcs, telemetry.TraceProcess{
						Name: id + " " + r.Label, Tracer: r.Tracer,
					})
				}
			}
		}
	}

	if *trace != "" {
		f, err := os.Create(*trace)
		if err == nil {
			err = telemetry.WriteChromeTrace(f, traceProcs)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace: wrote %d process(es) to %s (load in Perfetto: ui.perfetto.dev)\n",
			len(traceProcs), *trace)
	}
	if *traceReport {
		if err := telemetry.WriteCriticalPathReport(os.Stdout, traceProcs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *prom != "" {
		if lastSnapshot == nil {
			fmt.Fprintln(os.Stderr, "-prom: no telemetry snapshot recorded")
			os.Exit(1)
		}
		f, err := os.Create(*prom)
		if err == nil {
			err = lastSnapshot.WritePrometheus(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *telJSON != "" {
		data, err := json.MarshalIndent(telRecords, "", "  ")
		if err == nil {
			err = os.WriteFile(*telJSON, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
