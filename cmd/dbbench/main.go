// Command dbbench runs db_bench-style workloads against the LSM store on
// the simulated stack.
//
// Usage:
//
//	dbbench -workload multireadrandom -keys 20000 -threads 8 \
//	        -approach cross-predict-opt -mem 64
package main

import (
	"flag"
	"fmt"
	"os"

	crossprefetch "repro"
	"repro/internal/blockdev"
	"repro/internal/lsm"
)

var approaches = map[string]crossprefetch.Approach{
	"app-only":          crossprefetch.AppOnly,
	"app-only-fincore":  crossprefetch.AppOnlyFincore,
	"os-only":           crossprefetch.OSOnly,
	"cross-predict":     crossprefetch.CrossPredict,
	"cross-predict-opt": crossprefetch.CrossPredictOpt,
	"cross-fetchall":    crossprefetch.CrossFetchAllOpt,
}

func main() {
	var (
		workload = flag.String("workload", "multireadrandom",
			"fillseq|fillrandom|readrandom|readseq|readreverse|readscan|multireadrandom")
		keys     = flag.Int64("keys", 20_000, "database size in keys")
		value    = flag.Int("value", 1024, "value size in bytes")
		threads  = flag.Int("threads", 4, "client threads")
		ops      = flag.Int64("ops", 0, "operations per thread (0 = keys/threads)")
		memMB    = flag.Int64("mem", 64, "page cache budget in MB")
		approach = flag.String("approach", "cross-predict-opt", "prefetching approach")
		f2fs     = flag.Bool("f2fs", false, "use the F2FS-like layout")
		remote   = flag.Bool("remote", false, "use the remote NVMe-oF device")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	a, ok := approaches[*approach]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown approach %q; choose from:", *approach)
		for name := range approaches {
			fmt.Fprintf(os.Stderr, " %s", name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}

	cfg := crossprefetch.Config{
		MemoryBytes: *memMB << 20,
		Approach:    a,
	}
	if *f2fs {
		cfg.Layout = crossprefetch.LayoutF2FS
	}
	if *remote {
		cfg.Device = remoteDevice()
	}

	res, err := lsm.RunBench(lsm.BenchConfig{
		Sys:          crossprefetch.NewSystem(cfg),
		DB:           lsm.Options{MemtableBytes: 1 << 20, BlockBytes: 16 << 10},
		NumKeys:      *keys,
		ValueBytes:   *value,
		Threads:      *threads,
		Workload:     lsm.Workload(*workload),
		OpsPerThread: *ops,
		Seed:         *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%-16s %s threads=%d keys=%d: %s\n",
		*workload, *approach, *threads, *keys, res)
	fmt.Printf("  virtual time %v; device: %s\n", res.Makespan, res.Metrics.Device)
	fmt.Printf("  lib: %d prefetch calls, %d saved, %d pages prefetched, %d evicted\n",
		res.Metrics.Lib.PrefetchCalls, res.Metrics.Lib.SavedPrefetches,
		res.Metrics.Lib.PrefetchedPages, res.Metrics.Lib.EvictedPages)
}

// remoteDevice returns the NVMe-oF model without dragging blockdev into
// the flag surface.
func remoteDevice() blockdev.Config { return blockdev.RemoteNVMeConfig() }
