// Command benchjson runs a set of Go benchmarks and archives the parsed
// results as JSON, so perf changes can be diffed across PRs without
// eyeballing `go test -bench` text.
//
// Usage:
//
//	benchjson -out BENCH_PR3.json [-bench Trace] [-pkg .,./internal/pagecache]
//	benchjson -out BENCH_PR4.json -bench Parallel -cpu 1,2,4,8 \
//	          -label sharded -append
//
// Each record carries the benchmark name, the GOMAXPROCS it ran at, an
// optional variant label, iteration count, ns/op, B/op, allocs/op, and any
// custom metrics the benchmark reported (pages/s for the tracing and
// parallel benchmarks). -append merges into an existing archive instead of
// overwriting it, so a pre-change baseline and a post-change run can live
// in the same file.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Op         string             `json:"op"`
	Package    string             `json:"package"`
	Variant    string             `json:"variant,omitempty"` // -label (e.g. baseline vs sharded)
	Procs      int                `json:"procs,omitempty"`   // GOMAXPROCS the line ran at
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op"`
	AllocsOp   float64            `json:"allocs_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"` // pages/s etc.
}

func main() {
	var (
		out   = flag.String("out", "BENCH_PR3.json", "output JSON file")
		bench = flag.String("bench", "Trace", "benchmark regexp passed to go test")
		pkgs  = flag.String("pkg", ".", "comma-separated package list")
		btime = flag.String("benchtime", "", "optional -benchtime value (e.g. 100x)")
		cpu   = flag.String("cpu", "", "optional -cpu value (e.g. 1,2,4,8) for a GOMAXPROCS sweep")
		label = flag.String("label", "", "variant label stored with each record")
		appnd = flag.Bool("append", false, "merge into an existing -out file instead of overwriting")
	)
	flag.Parse()

	var results []result
	if *appnd {
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, &results); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: parsing existing %s: %v\n", *out, err)
				os.Exit(1)
			}
		}
	}
	for _, pkg := range strings.Split(*pkgs, ",") {
		pkg = strings.TrimSpace(pkg)
		if pkg == "" {
			continue
		}
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", pkg}
		if *btime != "" {
			args = append(args, "-benchtime", *btime)
		}
		if *cpu != "" {
			args = append(args, "-cpu", *cpu)
		}
		cmd := exec.Command("go", args...)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n", strings.Join(args, " "), err)
			os.Exit(1)
		}
		results = append(results, parse(pkg, *label, &buf)...)
	}

	sort.SliceStable(results, func(i, j int) bool {
		if results[i].Package != results[j].Package {
			return results[i].Package < results[j].Package
		}
		if results[i].Op != results[j].Op {
			return results[i].Op < results[j].Op
		}
		if results[i].Variant != results[j].Variant {
			return results[i].Variant < results[j].Variant
		}
		return results[i].Procs < results[j].Procs
	})
	data, err := json.MarshalIndent(results, "", "  ")
	if err == nil {
		err = os.WriteFile(*out, append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d result(s) to %s\n", len(results), *out)
}

// parse extracts benchmark lines of the form
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   2 allocs/op   1234 pages/s
//
// from go test output. Unit tokens follow their values. The GOMAXPROCS
// suffix is recorded in Procs and stripped from the name.
func parse(pkg, label string, buf *bytes.Buffer) []result {
	var out []result
	sc := bufio.NewScanner(buf)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Op: fields[0], Package: pkg, Variant: label, Iterations: iters}
		// Split off the GOMAXPROCS suffix ("BenchmarkFoo-8" -> name + procs).
		if i := strings.LastIndex(fields[0], "-"); i > 0 {
			if procs, err := strconv.Atoi(fields[0][i+1:]); err == nil {
				r.Op = fields[0][:i]
				r.Procs = procs
			}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = v
			}
		}
		out = append(out, r)
	}
	return out
}
