// Parallel benchmarks: real wall-clock scalability of the simulator's hot
// path across GOMAXPROCS (run with -cpu 1,2,4,8). Unlike the virtual-time
// experiment benchmarks, these measure how the *host* implementation of the
// cache behaves under real concurrency — the per-file page-index lock, the
// cache bitmap, the LRU lists, and the inode tables — which is exactly the
// contention the paper's §3.2 measures on Linux and §4.4/§4.5 remove.
//
// `make bench-parallel` runs the sweep and archives pages/s + allocs/op to
// BENCH_PR4.json next to the pre-sharding single-lock baseline.
package crossprefetch_test

import (
	"sync/atomic"
	"testing"

	crossprefetch "repro"
	"repro/internal/pagecache"
	"repro/internal/simtime"
	"repro/internal/vfs"
)

const (
	pbBlock     = 4096
	pbFilePages = 1024 // 4MB per file
	pbReadPages = 16   // 64KB per read
)

// pbSystem builds a kernel-only system whose working set fits in cache.
func pbSystem(b *testing.B, files int) (*crossprefetch.System, []string) {
	b.Helper()
	sys := crossprefetch.NewSystem(crossprefetch.Config{
		MemoryBytes: int64(files+8) * pbFilePages * pbBlock * 2,
		BlockSize:   pbBlock,
	})
	tl := sys.Timeline()
	names := make([]string, files)
	for i := range names {
		names[i] = "pb" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if err := sys.CreateSynthetic(tl, names[i], pbFilePages*pbBlock); err != nil {
			b.Fatal(err)
		}
	}
	return sys, names
}

// pbWarm faults a file fully into the cache.
func pbWarm(b *testing.B, sys *crossprefetch.System, name string) {
	b.Helper()
	tl := sys.Timeline()
	f, err := sys.Kernel().Open(tl, name)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close(tl)
	buf := make([]byte, 256<<10)
	for off := int64(0); off < pbFilePages*pbBlock; off += int64(len(buf)) {
		if _, err := f.ReadAt(tl, buf, off); err != nil {
			b.Fatal(err)
		}
	}
}

// reportPages converts a page counter into the pages/s headline metric.
func reportPages(b *testing.B, pages *atomic.Int64) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(pages.Load())/s, "pages/s")
	}
}

// BenchmarkParallelReadManyFiles: 64 warm files, every worker cycles
// through all of them with sequential 64KB reads. Stresses the global
// structures shared across inodes: the LRU lists and the inode table.
func BenchmarkParallelReadManyFiles(b *testing.B) {
	const files = 64
	sys, names := pbSystem(b, files)
	for _, n := range names {
		pbWarm(b, sys, n)
	}
	var pages, workers atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := workers.Add(1)
		tl := simtime.NewTimeline(0)
		fs := make([]*vfs.File, files)
		for i, n := range names {
			f, err := sys.Kernel().Open(tl, n)
			if err != nil {
				b.Fatal(err)
			}
			fs[i] = f
		}
		buf := make([]byte, pbReadPages*pbBlock)
		i := uint64(id) * 7
		for pb.Next() {
			f := fs[i%files]
			off := (int64(i/files) * pbReadPages % pbFilePages) * pbBlock
			if _, err := f.ReadAt(tl, buf, off); err != nil {
				b.Fatal(err)
			}
			pages.Add(pbReadPages)
			i++
		}
	})
	reportPages(b, &pages)
}

// BenchmarkParallelReadSharedFile: one warm file, every worker reads it
// through its own descriptor at a private stride. Stresses the per-inode
// structures: the page-index lock, the cache bitmap, and per-inode
// counters — the shared-file scenario of §4.5.
func BenchmarkParallelReadSharedFile(b *testing.B) {
	sys, names := pbSystem(b, 1)
	pbWarm(b, sys, names[0])
	var pages, workers atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := workers.Add(1)
		tl := simtime.NewTimeline(0)
		f, err := sys.Kernel().Open(tl, names[0])
		if err != nil {
			b.Fatal(err)
		}
		i := uint64(id) * 13
		buf := make([]byte, pbReadPages*pbBlock)
		for pb.Next() {
			off := (int64(i) * pbReadPages % pbFilePages) * pbBlock
			if _, err := f.ReadAt(tl, buf, off); err != nil {
				b.Fatal(err)
			}
			pages.Add(pbReadPages)
			i++
		}
	})
	reportPages(b, &pages)
}

// BenchmarkParallelMixedReadPrefetch: one large shared file; odd workers
// demand-read the warm front half while even workers churn the back half —
// evicting a slice via fadvise(DONTNEED) and prefetching it back through
// readahead_info. Readers' lookups and bitmap queries race against
// prefetch inserts holding the page-index lock exclusively, which is the
// §4.4 delineation claim under real concurrency.
func BenchmarkParallelMixedReadPrefetch(b *testing.B) {
	sys, names := pbSystem(b, 4)
	pbWarm(b, sys, names[0])
	const (
		frontPages = pbFilePages / 2
		slicePages = 64 // 256KB churn unit
	)
	var pages, workers atomic.Int64
	b.SetParallelism(2) // ensure both classes exist even at GOMAXPROCS=1
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := workers.Add(1)
		tl := simtime.NewTimeline(0)
		f, err := sys.Kernel().Open(tl, names[0])
		if err != nil {
			b.Fatal(err)
		}
		if id%2 == 1 {
			// Reader: sequential warm reads over the front half.
			i := uint64(id) * 13
			buf := make([]byte, pbReadPages*pbBlock)
			for pb.Next() {
				off := (int64(i) * pbReadPages % frontPages) * pbBlock
				if _, err := f.ReadAt(tl, buf, off); err != nil {
					b.Fatal(err)
				}
				pages.Add(pbReadPages)
				i++
			}
			return
		}
		// Churner: evict one back-half slice, prefetch it back.
		i := uint64(id) * 29
		for pb.Next() {
			lo := frontPages + (int64(i)*slicePages)%(pbFilePages-frontPages)
			hi := lo + slicePages
			if hi > pbFilePages {
				hi = pbFilePages
			}
			f.Fadvise(tl, vfs.AdvDontNeed, lo*pbBlock, (hi-lo)*pbBlock)
			info := f.ReadaheadInfo(tl, vfs.CacheInfoRequest{
				Offset: lo * pbBlock, Bytes: (hi - lo) * pbBlock,
				LimitOverride: hi - lo,
			}, nil)
			pages.Add(info.PrefetchedPages)
			i++
		}
	})
	reportPages(b, &pages)
}

// BenchmarkParallelBitmapQuery: cache-state queries (Span, CachedPages,
// the bitmap fast path) on a file that a writer class keeps inserting
// into. Pre-sharding these queries block behind every insert's exclusive
// page-index lock; post-sharding they are lock-free atomic reads.
func BenchmarkParallelBitmapQuery(b *testing.B) {
	sys, names := pbSystem(b, 1)
	pbWarm(b, sys, names[0])
	tl0 := sys.Timeline()
	f0, err := sys.Kernel().Open(tl0, names[0])
	if err != nil {
		b.Fatal(err)
	}
	fc := f0.FileCache()
	var queries, workers atomic.Int64
	b.SetParallelism(2) // ensure a writer exists even at GOMAXPROCS=1
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := workers.Add(1)
		tl := simtime.NewTimeline(0)
		if id%4 == 2 {
			// Writer: churn a private 64-page window of the file.
			lo := 64 * (id % 16)
			for pb.Next() {
				fc.RemoveRange(tl, lo, lo+64)
				fc.InsertRange(tl, lo, lo+64, pagecache.InsertOptions{MarkerAt: -1})
			}
			return
		}
		for pb.Next() {
			_ = fc.Span()
			_ = fc.CachedPages()
			queries.Add(1)
		}
	})
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(queries.Load())/s, "queries/s")
	}
}
