// Real-concurrency stress tests for the sharded cache: many goroutines
// demand-reading and prefetching disjoint and overlapping ranges of one
// shared inode, with eviction churn racing the readers. Run under -race by
// `make check`. After the storm settles, every layer's account of the work
// must still reconcile exactly — the same invariants the single-threaded
// telemetry audit enforces.
package crossprefetch_test

import (
	"sync"
	"sync/atomic"
	"testing"

	crossprefetch "repro"
	"repro/internal/simtime"
	"repro/internal/telemetry"
	"repro/internal/vfs"
)

// TestParallelSharedInodeStress: 8 goroutines hammer one inode — four read
// disjoint stripes, two scan the whole file (overlapping everyone), two
// evict a private window and demand-read it back. Reads go through the
// CROSS-LIB shim, so library prefetch (readahead_info) races the demand
// lookups and the evictions. Afterwards the bitmap popcount, the page
// index, the hit/miss counters, and the cross-layer telemetry audit must
// all agree exactly.
func TestParallelSharedInodeStress(t *testing.T) {
	const (
		block     = 4096
		filePages = 512
		workers   = 8
		iters     = 80
	)
	sys := crossprefetch.NewSystem(crossprefetch.Config{
		MemoryBytes: filePages * block * 4,
		BlockSize:   block,
		Telemetry:   true,
		Approach:    crossprefetch.CrossPredictOpt,
	})
	tl0 := sys.Timeline()
	if err := sys.CreateSynthetic(tl0, "shared", filePages*block); err != nil {
		t.Fatal(err)
	}

	var demanded atomic.Int64 // pages demanded via ReadAt, all goroutines
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tl := simtime.NewTimeline(0)
			f, err := sys.Open(tl, "shared")
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close(tl)
			switch {
			case id < 4:
				// Disjoint stripe: sequential 64KB reads inside a private
				// quarter of the file.
				const stripe = filePages / 4
				base := int64(id) * stripe
				buf := make([]byte, 16*block)
				for i := 0; i < iters; i++ {
					off := (base + int64(i*16)%stripe) * block
					if _, err := f.ReadAt(tl, buf, off); err != nil {
						t.Error(err)
						return
					}
					demanded.Add(16)
				}
			case id < 6:
				// Overlapping scan: 128KB reads over the whole file,
				// colliding with every stripe and the churn windows.
				buf := make([]byte, 32*block)
				for i := 0; i < iters; i++ {
					off := (int64(i*32) % filePages) * block
					if _, err := f.ReadAt(tl, buf, off); err != nil {
						t.Error(err)
						return
					}
					demanded.Add(32)
				}
			default:
				// Churner: evict a private 64-page window through the
				// kernel, then demand-read part of it back — misses race
				// the other readers' hits and the library's prefetches.
				win := int64(filePages/2) + int64(id-6)*64
				buf := make([]byte, 8*block)
				for i := 0; i < iters; i++ {
					f.Kernel().Fadvise(tl, vfs.AdvDontNeed, win*block, 64*block)
					off := (win + int64(i*8)%64) * block
					if _, err := f.ReadAt(tl, buf, off); err != nil {
						t.Error(err)
						return
					}
					demanded.Add(8)
				}
			}
		}(w)
	}
	wg.Wait()

	// Cross-layer reconciliation at quiescence.
	if err := sys.AuditTelemetry(); err != nil {
		t.Errorf("telemetry audit after stress: %v", err)
	}

	kf, err := sys.Kernel().Open(tl0, "shared")
	if err != nil {
		t.Fatal(err)
	}
	defer kf.Close(tl0)
	fc := kf.FileCache()

	// Bitmap popcount == page-index population, bit for bit.
	resident := int64(0)
	fc.WalkResident(nil, 0, fc.Span(), func(int64) { resident++ })
	if got := fc.CachedPages(); got != resident {
		t.Errorf("bitmap popcount %d != page-index population %d", got, resident)
	}
	if used := sys.Cache().Used(); used != resident {
		t.Errorf("cache used %d != shared file resident %d", used, resident)
	}

	// Per-file and global hit/miss counters agree (single data file), and
	// every demanded page was counted exactly once as a hit or a miss.
	st := sys.Cache().Stats()
	if st.Hits != fc.Hits() || st.Misses != fc.Misses() {
		t.Errorf("global hits/misses %d/%d != file hits/misses %d/%d",
			st.Hits, st.Misses, fc.Hits(), fc.Misses())
	}
	if got, want := fc.Hits()+fc.Misses(), demanded.Load(); got != want {
		t.Errorf("hits+misses = %d, want %d demanded pages", got, want)
	}

	// Every miss was demand-fetched from the device, and nothing else was.
	snap := sys.Telemetry().Snapshot()
	if got, want := snap.Counter(telemetry.CtrVFSDemandFetchPages), fc.Misses(); got != want {
		t.Errorf("demand-fetched pages %d != misses %d", got, want)
	}
}

// TestWarmReadAtZeroAlloc pins the allocation-free steady state of the
// demand-read hot path: with telemetry disabled and the file warm, a
// kernel ReadAt must not allocate — the lookup reuses pooled scratch and
// the readahead decision runs on the bitmap fast path.
func TestWarmReadAtZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops items by design; alloc guard is meaningless")
	}
	const (
		block     = 4096
		filePages = 512
	)
	sys := crossprefetch.NewSystem(crossprefetch.Config{
		MemoryBytes: filePages * block * 4,
		BlockSize:   block,
	})
	tl := sys.Timeline()
	if err := sys.CreateSynthetic(tl, "warm", filePages*block); err != nil {
		t.Fatal(err)
	}
	f, err := sys.Kernel().Open(tl, "warm")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close(tl)
	buf := make([]byte, 16*block)
	for off := int64(0); off < filePages*block; off += int64(len(buf)) {
		if _, err := f.ReadAt(tl, buf, off); err != nil {
			t.Fatal(err)
		}
	}

	var off int64
	if n := testing.AllocsPerRun(200, func() {
		if _, err := f.ReadAt(tl, buf, off); err != nil {
			t.Fatal(err)
		}
		off = (off + int64(len(buf))) % (filePages * block)
	}); n != 0 {
		t.Errorf("warm ReadAt: %v allocs/run, want 0", n)
	}
}
