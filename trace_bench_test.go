// Tracing overhead benchmarks: the same sequential read workload with
// tracing off, fully sampled, and 1-in-64 sampled. The pages/s metric is
// simulated pages delivered per wall-clock second — the number `make
// bench-json` archives in BENCH_PR3.json.
package crossprefetch_test

import (
	"testing"

	crossprefetch "repro"
)

func benchTracedReads(b *testing.B, cfg crossprefetch.Config) {
	b.Helper()
	cfg.MemoryBytes = 256 << 20
	cfg.Approach = crossprefetch.CrossPredictOpt
	sys := crossprefetch.NewSystem(cfg)
	tl := sys.Timeline()
	const fileSize = 32 << 20
	const chunk = 64 << 10
	if err := sys.CreateSynthetic(tl, "bench", fileSize); err != nil {
		b.Fatal(err)
	}
	f, err := sys.Open(tl, "bench")
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, chunk)
	var pages int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (int64(i) * chunk) % fileSize
		if _, err := f.ReadAt(tl, buf, off); err != nil {
			b.Fatal(err)
		}
		pages += chunk / 4096
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(pages)/sec, "pages/s")
	}
}

func BenchmarkTraceOffReadAt(b *testing.B) {
	benchTracedReads(b, crossprefetch.Config{})
}

func BenchmarkTraceFullReadAt(b *testing.B) {
	benchTracedReads(b, crossprefetch.Config{Trace: true})
}

func BenchmarkTraceSampledReadAt(b *testing.B) {
	benchTracedReads(b, crossprefetch.Config{Trace: true, TraceSampleEvery: 64})
}
