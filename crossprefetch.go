// Package crossprefetch is a full-system reproduction of "CrossPrefetch:
// Accelerating I/O Prefetching for Modern Storage" (ASPLOS 2024) in pure
// Go.
//
// The package assembles the simulated stack — block device, file system,
// page cache, the CROSS-OS kernel extensions, and the CROSS-LIB user-level
// runtime — behind one Config/System pair:
//
//	sys := crossprefetch.NewSystem(crossprefetch.Config{
//		MemoryBytes: 1 << 30,
//		Approach:    crossprefetch.CrossPredictOpt,
//	})
//	tl := sys.Timeline()
//	f, _ := sys.Create(tl, "data")
//	f.WriteAt(tl, payload, 0)
//	f.ReadAt(tl, buf, 0)
//	fmt.Println(sys.Metrics())
//
// All I/O is charged in virtual time (see internal/simtime), so a System
// can model a 1.4 GB/s NVMe device, an 80GB page cache, and dozens of
// application threads deterministically on a laptop. The Approach knob
// switches between the paper's comparison configurations (Table 2): the
// APPonly and OSonly baselines, the CrossP[+predict] and
// CrossP[+predict+opt] cross-layered prefetchers, and the idealistic
// CrossP[+fetchall+opt] policy.
package crossprefetch

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/blockdev"
	"repro/internal/crosslib"
	"repro/internal/fs"
	"repro/internal/pagecache"
	"repro/internal/readahead"
	"repro/internal/simtime"
	"repro/internal/telemetry"
	"repro/internal/vfs"
)

// Approach selects one of the paper's comparison configurations.
type Approach = crosslib.Approach

// The comparison approaches (paper Table 2 and Table 5).
const (
	AppOnly                  = crosslib.AppOnly
	AppOnlyFincore           = crosslib.AppOnlyFincore
	OSOnly                   = crosslib.OSOnly
	CrossVisibility          = crosslib.CrossVisibility
	CrossVisibilityRangeTree = crosslib.CrossVisibilityRangeTree
	CrossPredict             = crosslib.CrossPredict
	CrossPredictOpt          = crosslib.CrossPredictOpt
	CrossFetchAllOpt         = crosslib.CrossFetchAllOpt
)

// Layout selects the file-system allocation policy.
type Layout = fs.Layout

// File-system layouts.
const (
	LayoutExt4 = fs.LayoutExtent
	LayoutF2FS = fs.LayoutLog
)

// Config describes one simulated machine + process configuration.
// The zero value is usable: paper-testbed NVMe, ext4, 1GB of page cache,
// OSonly prefetching.
type Config struct {
	// Device is the storage model; zero value selects the paper's local
	// NVMe SSD. Use blockdev.RemoteNVMeConfig() for the NVMe-oF setup.
	Device blockdev.Config
	// Stripe stripes the local tier RAID-0 across this many device
	// instances (0 or 1 = single device; see blockdev.NewStack).
	Stripe int
	// StripeChunkBytes is the RAID-0 chunk size (default 256KB).
	StripeChunkBytes int64
	// Tier, when Tier.Enabled, layers the local device(s) over a remote
	// NVMe-oF tier with per-extent residency, hotness promotion,
	// watermark demotion, and cross-tier prefetch (see blockdev.TierConfig).
	Tier blockdev.TierConfig
	// Layout selects ext4-like or F2FS-like allocation.
	Layout Layout
	// MemoryBytes is the page-cache budget (default 1GB).
	MemoryBytes int64
	// BlockSize is the page/block size (default 4KB).
	BlockSize int64
	// Approach selects the prefetching configuration under test.
	Approach Approach
	// KernelRAMaxBytes is the kernel's static prefetch window limit
	// (default 128KB; Figure 10 sweeps it).
	KernelRAMaxBytes int64
	// DemandRetries bounds the kernel's transparent retries of a
	// transient device fault on blocking paths — demand reads, fsync,
	// mmap faults (default 3; see internal/vfs).
	DemandRetries int
	// Plug enables the block-layer submission scheduler on the kernel's
	// read paths: requests accumulate in a per-timeline plug, adjacent
	// same-op requests merge (bounded by MergeWindowBytes), and dispatch
	// is gated by the device queue depth — Linux block plugging over the
	// simulated NVMe (see internal/blockdev). Off (the default) every
	// request dispatches individually, exactly as before.
	Plug bool
	// QueueDepth bounds in-flight commands per plug flush (default 32).
	QueueDepth int
	// MergeWindowBytes caps one merged command (default 8MB).
	MergeWindowBytes int64
	// CongestionLimit overrides the kernel's prefetch congestion cutoff:
	// asynchronous prefetch I/O is postponed once the device backlog
	// exceeds this much virtual time (default 5ms; see internal/vfs).
	CongestionLimit simtime.Duration
	// LibOptions, when non-nil, overrides Approach's CROSS-LIB options.
	LibOptions *crosslib.Options
	// PerInodeLRU enables the per-inode LRU reclaim extension (the
	// paper's stated future work, §4.6).
	PerInodeLRU bool
	// Costs, when non-nil, overrides the calibrated CPU cost table.
	Costs *simtime.Costs
	// Telemetry enables the cross-layer observability subsystem: one
	// shared recorder threaded through the device, cache, kernel, and
	// library. Disabled (the default) it costs nothing on the hot paths.
	Telemetry bool
	// TelemetryEventCap bounds the decision-trace ring buffer (default
	// 4096 events; older events are dropped, counters stay exact).
	TelemetryEventCap int
	// Trace enables request-scoped span tracing: sampled top-level
	// operations carry a span tree through library, kernel, cache, and
	// device, in virtual time, feeding the flight recorder and the
	// Chrome-trace / critical-path exports. Disabled (the default) it
	// costs one nil check and zero allocations on the hot paths.
	Trace bool
	// TraceSampleEvery samples 1-in-N top-level operations (default 1 =
	// every operation). Ignored when TracePerInode is set.
	TraceSampleEvery int64
	// TracePerInode switches to deterministic per-inode sampling: an
	// inode is either always or never traced, keyed by TraceSeed.
	TracePerInode bool
	// TraceSeed seeds the sampling hash (per-inode mode) so runs are
	// reproducible.
	TraceSeed int64
	// TraceKeepPerOp bounds the flight recorder: the slowest N root
	// spans per operation class are retained (default 8).
	TraceKeepPerOp int
	// Brownout enables the kernel's overload controller: under memory or
	// device-backlog pressure the kernel first sheds ring prefetch SQEs
	// (vfs.ErrShed), then clamps the readahead window (see internal/vfs).
	// Off (the default) overload degrades exactly as before.
	Brownout bool
	// BrownoutClampPages is the readahead window under level-2 brownout
	// (default 8 pages).
	BrownoutClampPages int64
	// Scorecard enables the online prefetch-effectiveness scorecards:
	// windowed per-inode and per-tenant accuracy / coverage / pollution /
	// timeliness, partitioned by page origin (see telemetry.Scorecard).
	// Requires Telemetry for the audit's partition identities; disabled
	// (the default) it costs one nil check on the hot paths.
	Scorecard bool
	// ScorecardWindow is one scoring window's virtual width (default 10ms).
	ScorecardWindow simtime.Duration
	// ScorecardWindows is the trailing window ring depth per card
	// (default 8).
	ScorecardWindows int
	// ScorecardMaxCards bounds tracked inode cards per lock stripe;
	// excess inodes share an overflow card so totals stay exact
	// (default 64).
	ScorecardMaxCards int
}

func (c Config) withDefaults() Config {
	if c.Device.Name == "" {
		c.Device = blockdev.NVMeConfig()
	}
	if c.MemoryBytes <= 0 {
		c.MemoryBytes = 1 << 30
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 4096
	}
	if c.KernelRAMaxBytes <= 0 {
		c.KernelRAMaxBytes = 128 << 10
	}
	return c
}

// System is one assembled simulated machine running one process
// configuration.
type System struct {
	cfg    Config
	dev    *blockdev.Stack
	fsys   *fs.FS
	cache  *pagecache.Cache
	kernel *vfs.VFS
	lib    *crosslib.Runtime

	rec   *telemetry.Recorder
	tr    *telemetry.Tracer
	score *telemetry.Scorecard

	// procMu guards procs: extra runtimes from NewProcess, tracked so
	// AuditTelemetry can sum library stats across all of them.
	procMu sync.Mutex
	procs  []*crosslib.Runtime
}

// NewSystem assembles the full stack for the given configuration.
func NewSystem(cfg Config) *System {
	cfg = cfg.withDefaults()
	costs := simtime.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	cfg.Device.BlockSize = cfg.BlockSize
	dev := blockdev.NewStack(blockdev.StackConfig{
		Local:      cfg.Device,
		Width:      cfg.Stripe,
		ChunkBytes: cfg.StripeChunkBytes,
		Tier:       cfg.Tier,
	})
	fsys := fs.New(cfg.Layout, cfg.BlockSize, costs)
	cache := pagecache.New(pagecache.Config{
		BlockSize:     cfg.BlockSize,
		CapacityPages: cfg.MemoryBytes / cfg.BlockSize,
		Costs:         costs,
		PerInodeLRU:   cfg.PerInodeLRU,
	}, nil)

	kcfg := vfs.Config{
		Costs: costs,
		RA: readahead.Config{
			InitPages: 4,
			MaxPages:  cfg.KernelRAMaxBytes / cfg.BlockSize,
		},
		// The CROSS-OS kernel extension (limit relaxation) ships with
		// the Cross* approaches only.
		AllowLimitOverride: cfg.Approach.UsesLib(),
		MaxPrefetchBytes:   64 << 20,
		DemandRetries:      cfg.DemandRetries,
		CongestionLimit:    cfg.CongestionLimit,
		Brownout:           cfg.Brownout,
		BrownoutClampPages: cfg.BrownoutClampPages,
		Sched: blockdev.PlugConfig{
			Plugged:          cfg.Plug,
			QueueDepth:       cfg.QueueDepth,
			MergeWindowBytes: cfg.MergeWindowBytes,
		},
	}
	kernel := vfs.NewStack(kcfg, fsys, dev, cache)

	opts := cfg.Approach.Options()
	if cfg.LibOptions != nil {
		opts = *cfg.LibOptions
	}
	lib := crosslib.New(kernel, opts)

	s := &System{cfg: cfg, dev: dev, fsys: fsys, cache: cache, kernel: kernel, lib: lib}
	if cfg.Telemetry {
		s.rec = telemetry.NewRecorder(cfg.TelemetryEventCap)
		dev.SetTelemetry(s.rec)
		cache.SetTelemetry(s.rec)
		kernel.SetTelemetry(s.rec)
		lib.SetTelemetry(s.rec)
	}
	if cfg.Scorecard {
		s.score = telemetry.NewScorecard(telemetry.ScorecardConfig{
			WindowWidth: cfg.ScorecardWindow,
			Windows:     cfg.ScorecardWindows,
			MaxCards:    cfg.ScorecardMaxCards,
		})
		cache.SetScorecard(s.score)
		lib.SetScorecard(s.score)
	}
	if cfg.Trace {
		s.tr = telemetry.NewTracer(telemetry.TraceConfig{
			SampleEvery: cfg.TraceSampleEvery,
			PerInode:    cfg.TracePerInode,
			Seed:        cfg.TraceSeed,
			KeepPerOp:   cfg.TraceKeepPerOp,
		})
		// Only the library needs the handle: it opens the root span per
		// top-level operation; lower layers read the active span off the
		// timeline.
		lib.SetTracer(s.tr)
	}
	return s
}

// Timeline returns a fresh virtual-time thread clock starting at zero.
func (s *System) Timeline() *simtime.Timeline { return simtime.NewTimeline(0) }

// Group returns a thread group for multi-threaded workloads.
func (s *System) Group() *simtime.Group { return simtime.NewGroup(0) }

// Kernel exposes the simulated kernel (advanced use).
func (s *System) Kernel() *vfs.VFS { return s.kernel }

// Lib exposes the CROSS-LIB runtime (advanced use).
func (s *System) Lib() *crosslib.Runtime { return s.lib }

// Device exposes the first block device of the stack — the whole device
// when the system is unstriped and untiered (compat accessor).
func (s *System) Device() *blockdev.Device { return s.dev.Member(0) }

// Stack exposes the composed device stack (striping/tier accessors,
// per-member stats).
func (s *System) Stack() *blockdev.Stack { return s.dev }

// FS exposes the file system.
func (s *System) FS() *fs.FS { return s.fsys }

// Cache exposes the page cache.
func (s *System) Cache() *pagecache.Cache { return s.cache }

// Config reports the system configuration (with defaults applied).
func (s *System) Config() Config { return s.cfg }

// Approach reports the configured approach.
func (s *System) Approach() Approach { return s.cfg.Approach }

// NewProcess returns an additional CROSS-LIB runtime instance over the
// same kernel — a separate "process" with its own fd table, predictors,
// range trees, helper threads, and memory-budget policy, sharing the page
// cache and device with everything else (the paper's multi-instance
// setting, §5.4).
func (s *System) NewProcess() *crosslib.Runtime {
	opts := s.cfg.Approach.Options()
	if s.cfg.LibOptions != nil {
		opts = *s.cfg.LibOptions
	}
	rt := crosslib.New(s.kernel, opts)
	rt.SetTracer(s.tr)
	rt.SetScorecard(s.score)
	if s.rec != nil {
		rt.SetTelemetry(s.rec)
		s.procMu.Lock()
		s.procs = append(s.procs, rt)
		s.procMu.Unlock()
	}
	return rt
}

// SetTenantBudget caps one tenant's page-cache footprint (pages; 0 =
// unlimited). The soft budget biases global reclaim toward the tenant's
// pages while it is over; the hard budget triggers targeted direct
// reclaim of the tenant's own oldest pages on its allocations. Tenant
// IDs match the ring/lane tenant (crosslib.Runtime.NewRing's first
// argument); untagged I/O is tenant 0.
func (s *System) SetTenantBudget(tenant int, softPages, hardPages int64) {
	s.cache.SetTenantBudget(tenant, softPages, hardPages)
}

// TenantStats snapshots the per-tenant page-cache ledgers, ordered by
// tenant ID. The residencies always partition Cache().Used() exactly.
func (s *System) TenantStats() []pagecache.TenantStats {
	return s.cache.TenantStats()
}

// Telemetry exposes the shared recorder, or nil when Config.Telemetry is
// off.
func (s *System) Telemetry() *telemetry.Recorder { return s.rec }

// Tracer exposes the span tracer, or nil when Config.Trace is off.
func (s *System) Tracer() *telemetry.Tracer { return s.tr }

// Scorecard exposes the online effectiveness scorecards, or nil when
// Config.Scorecard is off.
func (s *System) Scorecard() *telemetry.Scorecard { return s.score }

// ErrTelemetryDisabled is returned by AuditTelemetry on a system built
// without Config.Telemetry.
var ErrTelemetryDisabled = errors.New("crossprefetch: telemetry disabled")

// AuditTelemetry snapshots the recorder and reconciles every layer's
// account of the prefetch pipeline (see telemetry.Audit). It returns nil
// when all invariants hold. Call it at a quiescent point (the inline
// worker pool guarantees one after any I/O call returns).
func (s *System) AuditTelemetry() error {
	if s.rec == nil {
		return ErrTelemetryDisabled
	}
	st := s.lib.Stats()
	saved := st.SavedPrefetches
	dropped := st.DroppedPrefetch
	droppedBrk := st.DroppedBreaker
	s.procMu.Lock()
	for _, rt := range s.procs {
		st := rt.Stats()
		saved += st.SavedPrefetches
		dropped += st.DroppedPrefetch
		droppedBrk += st.DroppedBreaker
	}
	s.procMu.Unlock()
	var tenants []telemetry.TenantLedger
	for _, ts := range s.cache.TenantStats() {
		tenants = append(tenants, telemetry.TenantLedger{
			ID:       ts.ID,
			Resident: ts.Resident,
			Inserted: ts.Inserted,
			Evicted:  ts.Evicted,
		})
	}
	if err := telemetry.Audit(s.snapshot(), telemetry.AuditInput{
		BlockSize:          s.cfg.BlockSize,
		CacheUsed:          s.cache.Used(),
		LibSavedPrefetches: saved,
		LibDroppedPrefetch: dropped,
		LibDroppedBreaker:  droppedBrk,
		HasLibStats:        true,
		StrictDevice:       true,
		Tenants:            tenants,
		HasTenants:         true,
	}); err != nil {
		return err
	}
	// With the scorecards on, their per-inode cards must partition the
	// recorder's per-origin counters exactly — same events, two ledgers.
	if s.score != nil {
		for o := telemetry.Origin(0); o < telemetry.NumOrigins; o++ {
			si, su, sw := s.score.OriginTotals(o)
			ri, ru, rw := s.rec.OriginTotals(o)
			if si != ri || su != ru || sw != rw {
				return fmt.Errorf("crossprefetch: scorecard origin %s totals %d/%d/%d != recorder %d/%d/%d",
					o, si, su, sw, ri, ru, rw)
			}
		}
		// The ensemble's per-(inode,arm) shadow cards must sum to the
		// recorder's shadow counters — same bookings, two ledgers. Only
		// exact while no arm stripe has spilled into its overflow card
		// (the overflow card mixes arms and cannot be attributed).
		if !s.score.ArmOverflowed() {
			var si, su, sw int64
			for a := telemetry.Arm(0); a < telemetry.NumArms; a++ {
				ai, au, aw := s.score.ArmTotals(a)
				si += ai
				su += au
				sw += aw
			}
			ri := s.rec.CounterValue(telemetry.CtrPredShadowIssuedPages)
			ru := s.rec.CounterValue(telemetry.CtrPredShadowHitPages)
			rw := s.rec.CounterValue(telemetry.CtrPredShadowExpiredPages)
			if si != ri || su != ru || sw != rw {
				return fmt.Errorf("crossprefetch: scorecard arm shadow totals %d/%d/%d != recorder shadow counters %d/%d/%d",
					si, su, sw, ri, ru, rw)
			}
		}
	}
	return nil
}

// snapshot captures the recorder and attaches the tracer's stats so the
// audit (and any export) can reconcile spans against counters.
func (s *System) snapshot() *telemetry.Snapshot {
	snap := s.rec.Snapshot()
	if snap != nil {
		snap.Trace = s.tr.Stats()
	}
	return snap
}

// Open opens a file through the configured approach's I/O path.
func (s *System) Open(tl *simtime.Timeline, name string) (*crosslib.File, error) {
	return s.lib.Open(tl, name)
}

// Create creates and opens a file through the configured I/O path.
func (s *System) Create(tl *simtime.Timeline, name string) (*crosslib.File, error) {
	return s.lib.Create(tl, name)
}

// OpenOrCreate opens name, creating it if missing.
func (s *System) OpenOrCreate(tl *simtime.Timeline, name string) (*crosslib.File, error) {
	return s.lib.OpenOrCreate(tl, name)
}

// CreateSynthetic provisions a fully mapped file of the given logical size
// whose unwritten blocks read as deterministic filler — the cheap way to
// set up paper-scale read workloads.
func (s *System) CreateSynthetic(tl *simtime.Timeline, name string, size int64) error {
	_, err := s.fsys.CreateSynthetic(tl, name, size)
	return err
}

// DropAllCaches clears the kernel page cache and the runtime's user-level
// cache belief — the paper clears caches before every measured phase.
func (s *System) DropAllCaches(tl *simtime.Timeline) {
	s.cache.DropAll(tl)
	s.lib.DropCaches(tl)
}

// Metrics is a cross-layer snapshot used by the benchmark harness.
type Metrics struct {
	Cache pagecache.Stats
	// Device aggregates the whole stack; Backends carries one entry per
	// member (empty on a single-device system), and Tier the extent
	// placement accounting (zero when untiered).
	Backends   []blockdev.Stats
	Tier       blockdev.TierStats
	Device     blockdev.Stats
	Lib        crosslib.Stats
	Prefetch   int64 // prefetch-related kernel crossings
	Reads      int64
	Writes     int64
	MmapFaults int64
	// Telemetry is the cross-layer recorder snapshot; nil unless
	// Config.Telemetry is set. When Config.Trace is also set its Trace
	// field carries the tracer's sampling and page totals.
	Telemetry *telemetry.Snapshot
	// Trace is the span tracer's stats; nil unless Config.Trace is set.
	Trace *telemetry.TraceStats
}

// Metrics snapshots all layers.
func (s *System) Metrics() Metrics {
	var backends []blockdev.Stats
	if s.dev.NumMembers() > 1 {
		backends = s.dev.MemberStats()
	}
	return Metrics{
		Cache:      s.cache.Stats(),
		Backends:   backends,
		Tier:       s.dev.TierStats(0),
		Device:     s.dev.Stats(),
		Lib:        s.lib.Stats(),
		Prefetch:   s.kernel.PrefetchSyscalls(),
		Reads:      s.kernel.SyscallCount(vfs.SysRead),
		Writes:     s.kernel.SyscallCount(vfs.SysWrite),
		MmapFaults: s.kernel.SyscallCount(vfs.SysMmapFault),
		Telemetry:  s.snapshot(),
		Trace:      s.tr.Stats(),
	}
}
